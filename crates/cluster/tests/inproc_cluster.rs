//! In-process integration tests for the coordinator/worker job
//! protocol: the same `run_coordinator`/`run_worker` code the binaries
//! ship, exercised over both transport backends — the deterministic
//! channel fabric and real TCP loopback sockets — behind the one
//! `Endpoint` reliability layer.

use adaptagg_cluster::{
    run_coordinated_query, run_coordinator, run_worker, ClusterError, ClusterSpec,
    CoordinatorOpts, CoordinatorState, WorkerOpts,
};
use adaptagg_net::{
    loopback_endpoints, Control, Endpoint, Fabric, FaultPlan, NetworkKind, Payload, TcpConfig,
};
use adaptagg_workload::default_query;
use std::thread;
use std::time::Duration;

fn spec(nodes: usize) -> ClusterSpec {
    ClusterSpec {
        nodes,
        tuples: 3000,
        groups: 20,
        seed: 7,
    }
}

fn reference(s: &ClusterSpec) -> Vec<adaptagg_model::ResultRow> {
    adaptagg_algos::reference_aggregate(&s.partitions(), &default_query()).unwrap()
}

fn quiet() -> impl FnMut(&str) {
    |_line: &str| {}
}

/// Drive a full cluster: the coordinator on this thread, `run_worker`
/// on one thread per remaining endpoint. Panics in worker threads fail
/// the join below.
fn drive(
    endpoints: Vec<Endpoint>,
    s: &ClusterSpec,
    copts: CoordinatorOpts,
    lazy_worker: Option<usize>,
) -> (
    Result<adaptagg_cluster::CoordinatorReport, ClusterError>,
    Vec<Result<adaptagg_cluster::WorkerReport, ClusterError>>,
) {
    let mut endpoints = endpoints.into_iter();
    let coord_ep = endpoints.next().unwrap();
    let mut handles = Vec::new();
    for (i, ep) in endpoints.enumerate() {
        let node = i + 1;
        let s = s.clone();
        if Some(node) == lazy_worker {
            // A worker that takes the dispatch and silently walks away:
            // the in-process stand-in for a wedged process (channel
            // peers have no heartbeat, so death surfaces only through
            // the coordinator's attempt deadline).
            handles.push(thread::spawn(move || {
                let mut ep = ep;
                let msg = ep.recv_timeout(Duration::from_secs(10)).unwrap();
                assert!(matches!(
                    msg.payload,
                    Payload::Control(Control::Job(_))
                ));
                Err(ClusterError::Protocol("lazy worker walked away"))
            }));
            continue;
        }
        let wopts = WorkerOpts {
            idle_timeout: Duration::from_secs(20),
            ..WorkerOpts::default()
        };
        handles.push(thread::spawn(move || {
            run_worker(ep, &s, &wopts, &mut quiet())
        }));
    }
    let report = run_coordinator(coord_ep, s, &copts, &mut quiet());
    let worker_results = handles.into_iter().map(|h| h.join().unwrap()).collect();
    (report, worker_results)
}

#[test]
fn fabric_cluster_completes_and_matches_reference() {
    let s = spec(4);
    let endpoints = Fabric::new(4, NetworkKind::high_speed_default()).into_endpoints();
    let (report, workers) = drive(endpoints, &s, CoordinatorOpts::default(), None);
    let report = report.unwrap();
    assert_eq!(report.rows, reference(&s));
    assert_eq!(report.attempts, 1);
    assert!(report.dead_workers.is_empty());
    for w in workers {
        let w = w.unwrap();
        assert_eq!(w.attempts_run, 1);
        assert_eq!(w.rows_reported, report.rows.len() as u64);
    }
}

#[test]
fn fabric_cluster_recovers_from_a_wedged_worker() {
    let s = spec(4);
    let endpoints = Fabric::new(4, NetworkKind::high_speed_default()).into_endpoints();
    let copts = CoordinatorOpts {
        attempt_timeout: Duration::from_secs(2),
        ..CoordinatorOpts::default()
    };
    let (report, workers) = drive(endpoints, &s, copts, Some(3));
    let report = report.unwrap();
    assert_eq!(report.rows, reference(&s), "recovered result must be exact");
    assert_eq!(report.attempts, 2);
    assert_eq!(report.dead_workers, vec![3]);
    assert_eq!(report.reassigned_partitions, 1);
    // The survivors ran both attempts; the lazy one errored out.
    let ok: Vec<_> = workers.iter().filter(|w| w.is_ok()).collect();
    assert_eq!(ok.len(), 2);
    for w in ok {
        assert_eq!(w.as_ref().unwrap().attempts_run, 2);
    }
}

#[test]
fn fabric_cluster_exhausts_honestly_when_every_worker_wedges() {
    // Two workers, both lazy — drive() only supports one lazy seat, so
    // hand-roll: workers take the dispatch and walk away; with
    // max_attempts = 2 the coordinator must spend its budget and
    // report exhaustion, not hang or fabricate rows.
    let s = spec(3);
    let mut endpoints = Fabric::new(3, NetworkKind::high_speed_default())
        .into_endpoints()
        .into_iter();
    let coord_ep = endpoints.next().unwrap();
    let handles: Vec<_> = endpoints
        .map(|mut ep| {
            thread::spawn(move || {
                while let Ok(msg) = ep.recv_timeout(Duration::from_secs(10)) {
                    if matches!(msg.payload, Payload::Control(Control::Job(_))) {
                        return;
                    }
                }
            })
        })
        .collect();
    let copts = CoordinatorOpts {
        max_attempts: 2,
        attempt_timeout: Duration::from_millis(600),
        ..CoordinatorOpts::default()
    };
    let err = run_coordinator(coord_ep, &s, &copts, &mut quiet()).unwrap_err();
    match &err {
        ClusterError::RecoveryExhausted {
            attempts,
            dead_workers,
        } => {
            assert_eq!(*attempts, 2);
            assert_eq!(dead_workers.len(), 2);
        }
        other => panic!("expected RecoveryExhausted, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 2, "exhaustion maps to exit 2");
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn tcp_cluster_completes_and_matches_reference() {
    let s = spec(4);
    let endpoints = loopback_endpoints(
        4,
        NetworkKind::high_speed_default(),
        &FaultPlan::none(),
        TcpConfig::snappy(),
    )
    .unwrap();
    let (report, workers) = drive(endpoints, &s, CoordinatorOpts::default(), None);
    let report = report.unwrap();
    assert_eq!(
        report.rows,
        reference(&s),
        "TCP transport must produce the same rows as the reference"
    );
    assert_eq!(report.attempts, 1);
    for w in workers {
        assert_eq!(w.unwrap().rows_reported, report.rows.len() as u64);
    }
}

#[test]
fn tcp_cluster_recovers_when_a_worker_disappears() {
    // The lazy worker drops its TCP endpoint after taking the
    // dispatch; its Bye makes the disappearance graceful, so recovery
    // rides the coordinator's attempt deadline (the SIGKILL/heartbeat
    // path is covered by the process-level suite).
    let s = spec(4);
    let endpoints = loopback_endpoints(
        4,
        NetworkKind::high_speed_default(),
        &FaultPlan::none(),
        TcpConfig::snappy(),
    )
    .unwrap();
    let copts = CoordinatorOpts {
        attempt_timeout: Duration::from_secs(2),
        ..CoordinatorOpts::default()
    };
    let (report, _workers) = drive(endpoints, &s, copts, Some(3));
    let report = report.unwrap();
    assert_eq!(report.rows, reference(&s));
    assert_eq!(report.attempts, 2);
    assert_eq!(report.dead_workers, vec![3]);
}

/// The serving mesh: workers started with `serve: true` stay on the
/// mesh past `Finish` and answer repeated queries from one persistent
/// [`CoordinatorState`]. Dropping the coordinator endpoint is the
/// clean shutdown signal — that requires a transport whose teardown
/// notifies peers (TCP's Bye); the channel fabric only surfaces a
/// dropped peer on *send*, so these tests run over loopback TCP, the
/// same backend the real serving deployment uses.
#[test]
fn serving_mesh_answers_repeated_queries() {
    let s = spec(4);
    let mut endpoints = loopback_endpoints(
        4,
        NetworkKind::high_speed_default(),
        &FaultPlan::none(),
        TcpConfig::snappy(),
    )
    .unwrap()
    .into_iter();
    let mut coord_ep = endpoints.next().unwrap();
    let handles: Vec<_> = endpoints
        .map(|ep| {
            let s = s.clone();
            let wopts = WorkerOpts {
                idle_timeout: Duration::from_secs(20),
                serve: true,
                ..WorkerOpts::default()
            };
            thread::spawn(move || run_worker(ep, &s, &wopts, &mut quiet()))
        })
        .collect();

    let copts = CoordinatorOpts::default();
    let mut state = CoordinatorState::new(&s);
    let expected = reference(&s);
    for round in 1..=3 {
        let report =
            run_coordinated_query(&mut coord_ep, &s, &copts, &mut state, &mut quiet()).unwrap();
        assert_eq!(report.rows, expected, "query #{round} must stay exact");
        assert_eq!(report.attempts, 1);
        assert_eq!(state.queries_done(), round);
    }
    assert!(state.dead_workers().is_empty());

    // Coordinator teardown = serving shutdown: every worker exits Ok
    // having finished all three queries.
    drop(coord_ep);
    for h in handles {
        let w = h.join().unwrap().unwrap();
        assert_eq!(w.queries_finished, 3);
        assert_eq!(w.attempts_run, 3);
        assert_eq!(w.rows_reported, expected.len() as u64);
    }
}

/// A worker death mid-burst: the next query recovers (reassigning the
/// victim's partitions), the death persists into later queries (no
/// re-dispatch to a ghost), attempt numbers keep rising globally, and
/// every answer stays exact.
#[test]
fn serving_mesh_survives_a_mid_burst_death() {
    let s = spec(4);
    let mut endpoints = loopback_endpoints(
        4,
        NetworkKind::high_speed_default(),
        &FaultPlan::none(),
        TcpConfig::snappy(),
    )
    .unwrap()
    .into_iter();
    let mut coord_ep = endpoints.next().unwrap();
    let mut handles = Vec::new();
    for (i, ep) in endpoints.enumerate() {
        let node = i + 1;
        let s = s.clone();
        if node == 2 {
            // Serves query 1 honestly, then walks away: takes query 2's
            // dispatch and exits without acking or shipping.
            handles.push(thread::spawn(move || {
                let wopts = WorkerOpts {
                    idle_timeout: Duration::from_secs(20),
                    ..WorkerOpts::default() // serve: false → returns after Finish
                };
                run_worker(ep, &s, &wopts, &mut quiet())
            }));
            continue;
        }
        let wopts = WorkerOpts {
            idle_timeout: Duration::from_secs(20),
            serve: true,
            ..WorkerOpts::default()
        };
        handles.push(thread::spawn(move || run_worker(ep, &s, &wopts, &mut quiet())));
    }

    let copts = CoordinatorOpts {
        attempt_timeout: Duration::from_secs(2),
        ..CoordinatorOpts::default()
    };
    let mut state = CoordinatorState::new(&s);
    let expected = reference(&s);

    let q1 = run_coordinated_query(&mut coord_ep, &s, &copts, &mut state, &mut quiet()).unwrap();
    assert_eq!(q1.rows, expected);
    assert_eq!(q1.attempts, 1);

    // Worker 2 has left the mesh; query 2 must recover around it.
    let q2 = run_coordinated_query(&mut coord_ep, &s, &copts, &mut state, &mut quiet()).unwrap();
    assert_eq!(q2.rows, expected, "post-death answer must stay exact");
    assert_eq!(q2.attempts, 2, "one failed attempt, one recovered");
    assert_eq!(q2.dead_workers, vec![2]);
    assert!(q2.reassigned_partitions > 0);

    // Query 3 starts from the persisted liveness map: no ghost
    // dispatch, so one attempt suffices and the death is still on
    // record.
    let q3 = run_coordinated_query(&mut coord_ep, &s, &copts, &mut state, &mut quiet()).unwrap();
    assert_eq!(q3.rows, expected);
    assert_eq!(q3.attempts, 1, "the dead worker must not cost query 3 anything");
    assert_eq!(state.dead_workers(), &[2]);
    assert_eq!(state.queries_done(), 3);

    drop(coord_ep);
    for h in handles {
        // Survivors exit Ok on coordinator teardown; the deserter's
        // own exit (Ok after query 1 — serve off) is also fine.
        let w = h.join().unwrap().unwrap();
        assert!(w.queries_finished >= 1);
    }
}
