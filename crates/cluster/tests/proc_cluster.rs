//! Process-level cluster tests: the real `adaptagg-coordinator` /
//! `adaptagg-worker` binaries on localhost TCP, including the headline
//! robustness scenario — a worker SIGKILLed mid-scan, detected by
//! heartbeat, and recovered from by partition reassignment.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

const COORDINATOR: &str = env!("CARGO_BIN_EXE_adaptagg-coordinator");
const WORKER: &str = env!("CARGO_BIN_EXE_adaptagg-worker");

/// Reserve `n` distinct loopback addresses (bind, record, release —
/// the race with other port users is acceptable in a test).
fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

/// A spawned binary with its output captured line by line.
struct Proc {
    child: Child,
    stdout: Arc<Mutex<Vec<String>>>,
    stderr: Arc<Mutex<Vec<String>>>,
}

impl Proc {
    fn spawn(exe: &str, args: &[String]) -> Proc {
        let mut child = Command::new(exe)
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn cluster binary");
        let stdout = Arc::new(Mutex::new(Vec::new()));
        let stderr = Arc::new(Mutex::new(Vec::new()));
        let out = child.stdout.take().unwrap();
        let err = child.stderr.take().unwrap();
        for (pipe, sink) in [
            (Box::new(out) as Box<dyn std::io::Read + Send>, &stdout),
            (Box::new(err) as Box<dyn std::io::Read + Send>, &stderr),
        ] {
            let sink = Arc::clone(sink);
            thread::spawn(move || {
                for line in BufReader::new(pipe).lines().map_while(Result::ok) {
                    sink.lock().unwrap().push(line);
                }
            });
        }
        Proc {
            child,
            stdout,
            stderr,
        }
    }

    /// Block until some captured stderr line contains `needle`.
    fn wait_for_stderr(&self, needle: &str, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            if self
                .stderr
                .lock()
                .unwrap()
                .iter()
                .any(|l| l.contains(needle))
            {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for stderr {needle:?}; so far: {:?}",
                self.stderr.lock().unwrap()
            );
            thread::sleep(Duration::from_millis(20));
        }
    }

    /// Block until exit, with a deadline; returns the exit code.
    fn wait_exit(&mut self, timeout: Duration) -> i32 {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(status) = self.child.try_wait().unwrap() {
                return status.code().unwrap_or(-1);
            }
            assert!(
                Instant::now() < deadline,
                "process did not exit; stderr: {:?}",
                self.stderr.lock().unwrap()
            );
            thread::sleep(Duration::from_millis(30));
        }
    }

    fn stdout_lines(&self) -> Vec<String> {
        self.stdout.lock().unwrap().clone()
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn sv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

#[test]
fn four_process_cluster_completes_cleanly() {
    let addrs = free_addrs(4).join(",");
    let common = ["--tuples", "4000", "--groups", "32", "--seed", "5"];
    let mut coordinator = Proc::spawn(COORDINATOR, &{
        let mut a = sv(&["--cluster", &addrs]);
        a.extend(sv(&common));
        a
    });
    let mut workers: Vec<Proc> = (1..4)
        .map(|i| {
            Proc::spawn(WORKER, &{
                let mut a = sv(&["--node", &i.to_string(), "--cluster", &addrs]);
                a.extend(sv(&common));
                a
            })
        })
        .collect();

    assert_eq!(coordinator.wait_exit(Duration::from_secs(90)), 0);
    let out = coordinator.stdout_lines();
    assert!(
        out.iter().any(|l| l == "rows: 32"),
        "unexpected stdout: {out:?}"
    );
    assert!(out.iter().any(|l| l == "attempts: 1"));
    for w in &mut workers {
        assert_eq!(w.wait_exit(Duration::from_secs(30)), 0);
    }
}

#[test]
fn sigkilled_worker_mid_scan_is_recovered_from() {
    let addrs = free_addrs(4).join(",");
    let common = [
        "--tuples",
        "4000",
        "--groups",
        "32",
        "--seed",
        "9",
        "--heartbeat-ms",
        "40",
        "--heartbeat-timeout-ms",
        "1000",
    ];
    let mut coordinator = Proc::spawn(COORDINATOR, &{
        let mut a = sv(&["--cluster", &addrs, "--attempt-timeout-ms", "60000"]);
        a.extend(sv(&common));
        a
    });
    let mut workers: Vec<Proc> = (1..4)
        .map(|i| {
            let mut a = sv(&["--node", &i.to_string(), "--cluster", &addrs]);
            a.extend(sv(&common));
            if i == 2 {
                // The victim dawdles mid-scan so the kill lands while
                // the query is genuinely in flight.
                a.extend(sv(&["--slow-scan-ms", "20000"]));
            }
            Proc::spawn(WORKER, &a)
        })
        .collect();

    // Wait until the victim acked attempt 1 and entered its scan, then
    // SIGKILL it — no Bye, no FIN-before-silence: the coordinator must
    // notice via heartbeat timeout.
    workers[1].wait_for_stderr("attempt 1: scanning", Duration::from_secs(60));
    workers[1].child.kill().unwrap();
    workers[1].child.wait().unwrap();

    assert_eq!(
        coordinator.wait_exit(Duration::from_secs(90)),
        0,
        "coordinator stderr: {:?}",
        coordinator.stderr.lock().unwrap()
    );
    let out = coordinator.stdout_lines();
    assert!(
        out.iter().any(|l| l == "rows: 32"),
        "recovered run must still produce every group; stdout: {out:?}"
    );
    assert!(out.iter().any(|l| l == "attempts: 2"), "stdout: {out:?}");
    assert!(out.iter().any(|l| l == "dead_workers: [2]"), "stdout: {out:?}");
    assert!(
        out.iter().any(|l| l == "reassigned_partitions: 1"),
        "stdout: {out:?}"
    );
    // The survivors get the Finish broadcast and exit clean.
    assert_eq!(workers[0].wait_exit(Duration::from_secs(30)), 0);
    assert_eq!(workers[2].wait_exit(Duration::from_secs(30)), 0);
}
