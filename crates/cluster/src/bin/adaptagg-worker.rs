//! `adaptagg-worker` — one worker node of a real-process cluster: scan
//! and pre-aggregate the owned partitions, ship partials to the
//! coordinator, repeat under recovery until the coordinator announces
//! completion.

use adaptagg_cluster::{binargs, run_worker, ClusterError, WorkerOpts};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

fn run(argv: &[String]) -> Result<(), ClusterError> {
    let args = binargs::parse(argv, false).map_err(ClusterError::Setup)?;
    if args.help {
        print!("{}", binargs::WORKER_USAGE);
        return Ok(());
    }
    let spec = args.spec();
    let node = args.node;
    let endpoint = adaptagg_cluster::establish_endpoint(node, &args.cluster, args.tcp_config())?;
    eprintln!("[worker {node}] mesh established ({} nodes)", spec.nodes);
    let opts = WorkerOpts {
        idle_timeout: args.idle_timeout,
        slow_scan: args.slow_scan,
        serve: args.serve,
        threads: args.threads,
        ..WorkerOpts::default()
    };
    let report = run_worker(endpoint, &spec, &opts, &mut |line| {
        eprintln!("[worker {node}] {line}");
    })?;
    println!("attempts_run: {}", report.attempts_run);
    println!("rows: {}", report.rows_reported);
    println!("queries_finished: {}", report.queries_finished);
    Ok(())
}
