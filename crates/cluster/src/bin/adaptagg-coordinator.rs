//! `adaptagg-coordinator` — node 0 of a real-process cluster: dispatch
//! attempts, merge partial aggregates, recover from dead workers.
//! Progress goes to stderr (line-timely under pipes); the result
//! summary goes to stdout.

use adaptagg_cluster::{binargs, run_coordinator, ClusterError, CoordinatorOpts};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

fn run(argv: &[String]) -> Result<(), ClusterError> {
    let args = binargs::parse(argv, true).map_err(ClusterError::Setup)?;
    if args.help {
        print!("{}", binargs::COORDINATOR_USAGE);
        return Ok(());
    }
    let spec = args.spec();
    let endpoint = adaptagg_cluster::establish_endpoint(0, &args.cluster, args.tcp_config())?;
    eprintln!("[coordinator] mesh established ({} nodes)", spec.nodes);
    let opts = CoordinatorOpts {
        max_attempts: args.max_attempts,
        attempt_timeout: args.attempt_timeout,
        ..CoordinatorOpts::default()
    };
    let report = run_coordinator(endpoint, &spec, &opts, &mut |line| {
        eprintln!("[coordinator] {line}");
    })?;
    println!("rows: {}", report.rows.len());
    println!("attempts: {}", report.attempts);
    println!("dead_workers: {:?}", report.dead_workers);
    println!("reassigned_partitions: {}", report.reassigned_partitions);
    Ok(())
}
