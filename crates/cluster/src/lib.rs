//! Networked cluster mode: run one aggregation query across real
//! processes over the TCP transport, with coordinator-driven recovery.
//!
//! The simulated fabric (`adaptagg-net`'s in-process backend) answers
//! the paper's *performance* questions; this crate answers the
//! *robustness* one: does the same partial-aggregate protocol survive a
//! `kill -9`'d worker on a real wire? One process runs
//! `adaptagg-coordinator` (node 0, owns no data), the rest run
//! `adaptagg-worker` (node `1..n`, one base partition each). Every
//! process regenerates the workload deterministically from the shared
//! `(tuples, groups, seed)` spec, so no data files cross the wire —
//! only partial aggregates, exactly like C2P's phase 2.
//!
//! Recovery is attempt-structured: the coordinator broadcasts
//! [`proto::JobMsg::Start`] with the current partition→worker ownership
//! map, workers ack and ship partials, and on a dead or stalled worker
//! the coordinator reassigns the victim's partitions fewest-loaded-first
//! and starts the next attempt. The per-link FIFO order the reliability
//! layer enforces makes the ack a barrier: anything a worker sent before
//! its ack for the current attempt belongs to a stale attempt and is
//! discarded.

pub mod binargs;
pub mod coordinator;
pub mod proto;
pub mod spec;
pub mod worker;

pub use binargs::BinArgs;
pub use coordinator::{
    run_coordinated_query, run_coordinator, CoordinatorOpts, CoordinatorReport, CoordinatorState,
};
pub use proto::JobMsg;
pub use spec::ClusterSpec;
pub use worker::{run_worker, WorkerOpts, WorkerReport};

use adaptagg_exec::ExecError;
use adaptagg_net::{
    Endpoint, FaultPlan, NetError, Network, NetworkKind, TcpConfig, TcpTransport,
};
use std::net::{SocketAddr, TcpListener};

/// Progress callback: binaries wire it to stderr, tests to a sink.
pub type Progress<'a> = &'a mut dyn FnMut(&str);

/// Everything that can go wrong in cluster mode, with the shared
/// exit-code contract attached (see [`ClusterError::exit_code`]).
#[derive(Debug)]
pub enum ClusterError {
    /// A transport or reliability-layer failure.
    Net(NetError),
    /// An execution failure inside an attempt.
    Exec(ExecError),
    /// A peer violated the job protocol.
    Protocol(&'static str),
    /// A peer aborted the query and told us why.
    Aborted { origin: usize, reason: String },
    /// Every recovery attempt was spent (or no workers remain).
    RecoveryExhausted {
        attempts: usize,
        dead_workers: Vec<usize>,
    },
    /// A setup failure (bind, argument parsing).
    Setup(String),
}

impl ClusterError {
    /// The process exit code this error maps to — the same contract as
    /// `adaptagg-cli`: `2` for honest recovery exhaustion, `1` for
    /// everything else (`0` is success and never reaches an error).
    pub fn exit_code(&self) -> i32 {
        match self {
            ClusterError::RecoveryExhausted { .. } => 2,
            _ => 1,
        }
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Net(e) => write!(f, "network: {e}"),
            ClusterError::Exec(e) => write!(f, "execution: {e}"),
            ClusterError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClusterError::Aborted { origin, reason } => {
                write!(f, "aborted by node {origin}: {reason}")
            }
            ClusterError::RecoveryExhausted {
                attempts,
                dead_workers,
            } => write!(
                f,
                "recovery exhausted after {attempts} attempt(s); dead workers: {dead_workers:?}"
            ),
            ClusterError::Setup(e) => write!(f, "setup: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<NetError> for ClusterError {
    fn from(e: NetError) -> Self {
        ClusterError::Net(e)
    }
}

impl From<ExecError> for ClusterError {
    fn from(e: ExecError) -> Self {
        ClusterError::Exec(e)
    }
}

/// Bind this node's listen address and join the mesh, returning a fully
/// reliable endpoint (sequencing, dedup, Lamport accounting) over the
/// TCP wire. `cluster[i]` is node `i`'s address; `cluster[node]` is
/// ours. The network model is the zero-parameter high-speed default —
/// cluster mode measures wall-clock behaviour, not simulated cost.
pub fn establish_endpoint(
    node: usize,
    cluster: &[SocketAddr],
    cfg: TcpConfig,
) -> Result<Endpoint, ClusterError> {
    let listener = TcpListener::bind(cluster[node])
        .map_err(|e| ClusterError::Setup(format!("bind {}: {e}", cluster[node])))?;
    let transport = TcpTransport::establish(node, cluster.len(), listener, cluster.to_vec(), cfg)?;
    Ok(Endpoint::over(
        Box::new(transport),
        Network::new(NetworkKind::high_speed_default()),
        &FaultPlan::none(),
    ))
}
