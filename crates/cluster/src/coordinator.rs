//! The coordinator's attempt loop: dispatch ownership, merge partials,
//! and recover from dead or stalled workers by reassigning their
//! partitions — the process-level twin of the in-process recovery
//! runtime.

use crate::proto::JobMsg;
use crate::spec::{reassign_partitions, ClusterSpec};
use crate::{ClusterError, Progress};
use adaptagg_exec::{Clock, ExecError};
use adaptagg_hashagg::HashAggregator;
use adaptagg_model::{CostParams, ResultRow};
use adaptagg_net::{Control, Endpoint, NetError, Payload};
use std::time::{Duration, Instant};

/// Coordinator knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorOpts {
    /// Attempt budget. Each worker death or stall costs one attempt;
    /// past this the run ends honestly with
    /// [`ClusterError::RecoveryExhausted`] (exit 2).
    pub max_attempts: usize,
    /// Wall-clock deadline per attempt. When it lapses with EOS still
    /// missing, the lowest-id straggler is declared the victim (the
    /// waiter cannot know who stalled; removing *someone* keeps the
    /// attempt count bounded).
    pub attempt_timeout: Duration,
    /// Aggregator memory bound (entries resident before overflow).
    pub max_entries: usize,
    /// Overflow-bucket fanout.
    pub fanout: usize,
}

impl Default for CoordinatorOpts {
    fn default() -> Self {
        CoordinatorOpts {
            max_attempts: 0, // 0 = one per worker, resolved in run
            attempt_timeout: Duration::from_secs(30),
            max_entries: CostParams::paper_default().max_hash_entries,
            fanout: 4,
        }
    }
}

/// What a completed coordinated run reports.
#[derive(Debug)]
pub struct CoordinatorReport {
    /// The merged result, sorted by group key.
    pub rows: Vec<ResultRow>,
    /// Attempts spent, counting the successful one.
    pub attempts: usize,
    /// Workers declared dead, in death order.
    pub dead_workers: Vec<usize>,
    /// Partitions that changed owner across all recoveries.
    pub reassigned_partitions: usize,
}

/// How an attempt's collect loop ended.
enum AttemptEnd {
    /// Every live worker delivered EOS; the aggregate is complete.
    Done(Box<HashAggregator>),
    /// This worker must be declared dead before the next attempt.
    Victim(usize),
}

/// What survives between queries on a serving mesh: the liveness map,
/// the partition ownership map, and a globally monotonic attempt
/// counter. A worker SIGKILLed during one query stays dead for the
/// next, its partitions stay reassigned, and — because attempt numbers
/// never repeat — a stale ack from a dead or lagging worker can never
/// open a later query's ack barrier.
#[derive(Debug, Clone)]
pub struct CoordinatorState {
    alive: Vec<bool>,
    dead_workers: Vec<usize>,
    owners: Vec<u32>,
    /// Next attempt number to dispatch (monotonic across queries).
    next_attempt: u32,
    /// Queries completed on this mesh.
    queries_done: usize,
}

impl CoordinatorState {
    /// Fresh state: everyone alive, attempt-1 ownership.
    pub fn new(spec: &ClusterSpec) -> Self {
        CoordinatorState {
            alive: vec![true; spec.nodes],
            dead_workers: Vec::new(),
            owners: spec.initial_owners(),
            next_attempt: 1,
            queries_done: 0,
        }
    }

    /// Workers declared dead so far, in death order.
    pub fn dead_workers(&self) -> &[usize] {
        &self.dead_workers
    }

    /// Queries completed on this mesh.
    pub fn queries_done(&self) -> usize {
        self.queries_done
    }

    /// Worker ids still believed alive.
    fn live(&self) -> Vec<usize> {
        (1..self.alive.len()).filter(|&w| self.alive[w]).collect()
    }
}

/// Run the coordinator (node 0) over an established endpoint for one
/// query. Returns the merged rows or an honest failure; the endpoint
/// is consumed (the mesh is torn down on drop, sending Bye to
/// surviving workers).
pub fn run_coordinator(
    mut endpoint: Endpoint,
    spec: &ClusterSpec,
    opts: &CoordinatorOpts,
    progress: Progress<'_>,
) -> Result<CoordinatorReport, ClusterError> {
    let mut state = CoordinatorState::new(spec);
    run_coordinated_query(&mut endpoint, spec, opts, &mut state, progress)
}

/// Run one query over a live mesh, mutating the persistent `state` —
/// the serving building block ([`run_coordinator`] is the one-shot
/// wrapper). The attempt budget applies per query; deaths accumulate
/// in `state` across calls.
pub fn run_coordinated_query(
    endpoint: &mut Endpoint,
    spec: &ClusterSpec,
    opts: &CoordinatorOpts,
    state: &mut CoordinatorState,
    progress: Progress<'_>,
) -> Result<CoordinatorReport, ClusterError> {
    assert_eq!(endpoint.node(), 0, "the coordinator must be node 0");
    let plan = spec.plan();
    let params = CostParams::paper_default();
    let mut clock = Clock::new(params.clone());
    let mut reassigned = 0usize;
    let max_attempts = if opts.max_attempts == 0 {
        spec.workers().max(1)
    } else {
        opts.max_attempts
    };

    for spent in 1..=max_attempts {
        let live = state.live();
        if live.is_empty() {
            return Err(ClusterError::RecoveryExhausted {
                attempts: spent - 1,
                dead_workers: state.dead_workers.clone(),
            });
        }
        let attempt = state.next_attempt;
        state.next_attempt += 1;
        progress(&format!(
            "attempt {spent}/{max_attempts} (global #{attempt}): {} partition(s) across {} worker(s)",
            state.owners.len(),
            live.len()
        ));

        let end = run_attempt(
            endpoint,
            spec,
            opts,
            &plan,
            &params,
            &mut clock,
            attempt,
            &state.owners,
            &live,
        )?;

        match end {
            AttemptEnd::Done(agg) => {
                let (mut rows, _) = agg
                    .finish_rows(&mut clock)
                    .map_err(ExecError::from)?;
                adaptagg_model::query::sort_rows(&mut rows);
                let finish = Control::Job(
                    JobMsg::Finish {
                        rows: rows.len() as u64,
                    }
                    .encode(),
                );
                for &w in &live {
                    // Best effort: a worker dying after the result is
                    // complete cannot un-complete it.
                    let _ = endpoint.send_control(w, finish.clone(), clock.now_ms());
                }
                progress(&format!(
                    "complete: {} row(s) in {spent} attempt(s)",
                    rows.len()
                ));
                state.queries_done += 1;
                return Ok(CoordinatorReport {
                    rows,
                    attempts: spent,
                    dead_workers: state.dead_workers.clone(),
                    reassigned_partitions: reassigned,
                });
            }
            AttemptEnd::Victim(victim) => {
                state.alive[victim] = false;
                state.dead_workers.push(victim);
                let heirs: Vec<u32> = live
                    .iter()
                    .copied()
                    .filter(|&w| w != victim)
                    .map(|w| w as u32)
                    .collect();
                if heirs.is_empty() {
                    return Err(ClusterError::RecoveryExhausted {
                        attempts: spent,
                        dead_workers: state.dead_workers.clone(),
                    });
                }
                let moved = reassign_partitions(&mut state.owners, victim as u32, &heirs);
                reassigned += moved;
                progress(&format!(
                    "worker {victim} declared dead; reassigned {moved} partition(s)"
                ));
            }
        }
    }

    Err(ClusterError::RecoveryExhausted {
        attempts: max_attempts,
        dead_workers: state.dead_workers.clone(),
    })
}

/// Dispatch one attempt and collect until every live worker delivered
/// EOS, a worker died, or the deadline lapsed.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    endpoint: &mut Endpoint,
    spec: &ClusterSpec,
    opts: &CoordinatorOpts,
    plan: &adaptagg_algos::common::QueryPlan,
    params: &CostParams,
    clock: &mut Clock,
    attempt: u32,
    owners: &[u32],
    live: &[usize],
) -> Result<AttemptEnd, ClusterError> {
    let start = Control::Job(
        JobMsg::Start {
            attempt,
            owners: owners.to_vec(),
        }
        .encode(),
    );
    for &w in live {
        match endpoint.send_control(w, start.clone(), clock.now_ms()) {
            Ok(()) => {}
            Err(NetError::PeerDown { peer }) => return Ok(AttemptEnd::Victim(peer)),
            Err(e) => return Err(e.into()),
        }
    }

    // Hash cost is not re-charged for merged partials (they were hashed
    // at the worker) — same accounting as the in-process merge phase.
    let mut agg = HashAggregator::new(
        plan.projected.clone(),
        opts.max_entries,
        params.page_bytes,
        opts.fanout,
    )
    .with_charge_hash(false);
    let mut acked = vec![false; spec.nodes];
    let mut eos = vec![false; spec.nodes];
    let deadline = Instant::now() + opts.attempt_timeout;

    loop {
        if live.iter().all(|&w| eos[w]) {
            return Ok(AttemptEnd::Done(Box::new(agg)));
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        let straggler = || {
            live.iter()
                .copied()
                .find(|&w| !eos[w])
                .expect("loop guard: some EOS is missing")
        };
        if remaining.is_zero() {
            return Ok(AttemptEnd::Victim(straggler()));
        }
        let msg = match endpoint.recv_timeout(remaining) {
            Ok(msg) => msg,
            Err(NetError::PeerDown { peer }) => {
                if peer != 0 && live.contains(&peer) {
                    return Ok(AttemptEnd::Victim(peer));
                }
                continue; // an already-recovered-from death
            }
            Err(NetError::Deadline { .. }) => return Ok(AttemptEnd::Victim(straggler())),
            Err(e) => return Err(e.into()),
        };
        let from = msg.from;
        if from == 0 || from >= spec.nodes || !live.contains(&from) {
            continue;
        }
        if !acked[from] {
            // The ack barrier: everything a worker sent before its ack
            // for *this* attempt is stale-attempt traffic. Per-link
            // FIFO (the sequencing layer) makes this airtight.
            if let Payload::Control(Control::Job(bytes)) = &msg.payload {
                if let Ok(JobMsg::Ack { attempt: a }) = JobMsg::decode(bytes) {
                    if a == attempt {
                        acked[from] = true;
                    }
                }
            }
            continue;
        }
        match msg.payload {
            Payload::Data { kind, page } => {
                agg.push_page(kind, &page, clock).map_err(ExecError::from)?;
            }
            Payload::Control(Control::EndOfStream) => eos[from] = true,
            Payload::Control(Control::Abort { origin, .. }) => {
                // A worker hit an unrecoverable local error and told us
                // before exiting: same recovery path as a silent death.
                let victim = if origin < spec.nodes { origin } else { from };
                return Ok(AttemptEnd::Victim(victim));
            }
            Payload::Control(_) => {} // stray (late EndOfPhase etc.)
        }
    }
}
