//! The coordinator's attempt loop: dispatch ownership, merge partials,
//! and recover from dead or stalled workers by reassigning their
//! partitions — the process-level twin of the in-process recovery
//! runtime.

use crate::proto::JobMsg;
use crate::spec::{reassign_partitions, ClusterSpec};
use crate::{ClusterError, Progress};
use adaptagg_exec::{Clock, ExecError};
use adaptagg_hashagg::HashAggregator;
use adaptagg_model::{CostParams, ResultRow};
use adaptagg_net::{Control, Endpoint, NetError, Payload};
use std::time::{Duration, Instant};

/// Coordinator knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorOpts {
    /// Attempt budget. Each worker death or stall costs one attempt;
    /// past this the run ends honestly with
    /// [`ClusterError::RecoveryExhausted`] (exit 2).
    pub max_attempts: usize,
    /// Wall-clock deadline per attempt. When it lapses with EOS still
    /// missing, the lowest-id straggler is declared the victim (the
    /// waiter cannot know who stalled; removing *someone* keeps the
    /// attempt count bounded).
    pub attempt_timeout: Duration,
    /// Aggregator memory bound (entries resident before overflow).
    pub max_entries: usize,
    /// Overflow-bucket fanout.
    pub fanout: usize,
}

impl Default for CoordinatorOpts {
    fn default() -> Self {
        CoordinatorOpts {
            max_attempts: 0, // 0 = one per worker, resolved in run
            attempt_timeout: Duration::from_secs(30),
            max_entries: CostParams::paper_default().max_hash_entries,
            fanout: 4,
        }
    }
}

/// What a completed coordinated run reports.
#[derive(Debug)]
pub struct CoordinatorReport {
    /// The merged result, sorted by group key.
    pub rows: Vec<ResultRow>,
    /// Attempts spent, counting the successful one.
    pub attempts: usize,
    /// Workers declared dead, in death order.
    pub dead_workers: Vec<usize>,
    /// Partitions that changed owner across all recoveries.
    pub reassigned_partitions: usize,
}

/// How an attempt's collect loop ended.
enum AttemptEnd {
    /// Every live worker delivered EOS; the aggregate is complete.
    Done(Box<HashAggregator>),
    /// This worker must be declared dead before the next attempt.
    Victim(usize),
}

/// Run the coordinator (node 0) over an established endpoint. Returns
/// the merged rows or an honest failure; the endpoint is consumed (the
/// mesh is torn down on drop, sending Bye to surviving workers).
pub fn run_coordinator(
    mut endpoint: Endpoint,
    spec: &ClusterSpec,
    opts: &CoordinatorOpts,
    progress: Progress<'_>,
) -> Result<CoordinatorReport, ClusterError> {
    assert_eq!(endpoint.node(), 0, "the coordinator must be node 0");
    let plan = spec.plan();
    let params = CostParams::paper_default();
    let mut clock = Clock::new(params.clone());
    let mut owners = spec.initial_owners();
    let mut alive = vec![true; spec.nodes];
    let mut dead_workers: Vec<usize> = Vec::new();
    let mut reassigned = 0usize;
    let max_attempts = if opts.max_attempts == 0 {
        spec.workers().max(1)
    } else {
        opts.max_attempts
    };

    for attempt in 1..=max_attempts {
        let live: Vec<usize> = (1..spec.nodes).filter(|&w| alive[w]).collect();
        if live.is_empty() {
            return Err(ClusterError::RecoveryExhausted {
                attempts: attempt - 1,
                dead_workers,
            });
        }
        progress(&format!(
            "attempt {attempt}/{max_attempts}: {} partition(s) across {} worker(s)",
            owners.len(),
            live.len()
        ));

        let end = run_attempt(
            &mut endpoint,
            spec,
            opts,
            &plan,
            &params,
            &mut clock,
            attempt as u32,
            &owners,
            &live,
        )?;

        match end {
            AttemptEnd::Done(agg) => {
                let (mut rows, _) = agg
                    .finish_rows(&mut clock)
                    .map_err(ExecError::from)?;
                adaptagg_model::query::sort_rows(&mut rows);
                let finish = Control::Job(
                    JobMsg::Finish {
                        rows: rows.len() as u64,
                    }
                    .encode(),
                );
                for &w in &live {
                    // Best effort: a worker dying after the result is
                    // complete cannot un-complete it.
                    let _ = endpoint.send_control(w, finish.clone(), clock.now_ms());
                }
                progress(&format!(
                    "complete: {} row(s) in {attempt} attempt(s)",
                    rows.len()
                ));
                return Ok(CoordinatorReport {
                    rows,
                    attempts: attempt,
                    dead_workers,
                    reassigned_partitions: reassigned,
                });
            }
            AttemptEnd::Victim(victim) => {
                alive[victim] = false;
                dead_workers.push(victim);
                let heirs: Vec<u32> = live
                    .iter()
                    .copied()
                    .filter(|&w| w != victim)
                    .map(|w| w as u32)
                    .collect();
                if heirs.is_empty() {
                    return Err(ClusterError::RecoveryExhausted {
                        attempts: attempt,
                        dead_workers,
                    });
                }
                let moved = reassign_partitions(&mut owners, victim as u32, &heirs);
                reassigned += moved;
                progress(&format!(
                    "worker {victim} declared dead; reassigned {moved} partition(s)"
                ));
            }
        }
    }

    Err(ClusterError::RecoveryExhausted {
        attempts: max_attempts,
        dead_workers,
    })
}

/// Dispatch one attempt and collect until every live worker delivered
/// EOS, a worker died, or the deadline lapsed.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    endpoint: &mut Endpoint,
    spec: &ClusterSpec,
    opts: &CoordinatorOpts,
    plan: &adaptagg_algos::common::QueryPlan,
    params: &CostParams,
    clock: &mut Clock,
    attempt: u32,
    owners: &[u32],
    live: &[usize],
) -> Result<AttemptEnd, ClusterError> {
    let start = Control::Job(
        JobMsg::Start {
            attempt,
            owners: owners.to_vec(),
        }
        .encode(),
    );
    for &w in live {
        match endpoint.send_control(w, start.clone(), clock.now_ms()) {
            Ok(()) => {}
            Err(NetError::PeerDown { peer }) => return Ok(AttemptEnd::Victim(peer)),
            Err(e) => return Err(e.into()),
        }
    }

    // Hash cost is not re-charged for merged partials (they were hashed
    // at the worker) — same accounting as the in-process merge phase.
    let mut agg = HashAggregator::new(
        plan.projected.clone(),
        opts.max_entries,
        params.page_bytes,
        opts.fanout,
    )
    .with_charge_hash(false);
    let mut acked = vec![false; spec.nodes];
    let mut eos = vec![false; spec.nodes];
    let deadline = Instant::now() + opts.attempt_timeout;

    loop {
        if live.iter().all(|&w| eos[w]) {
            return Ok(AttemptEnd::Done(Box::new(agg)));
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        let straggler = || {
            live.iter()
                .copied()
                .find(|&w| !eos[w])
                .expect("loop guard: some EOS is missing")
        };
        if remaining.is_zero() {
            return Ok(AttemptEnd::Victim(straggler()));
        }
        let msg = match endpoint.recv_timeout(remaining) {
            Ok(msg) => msg,
            Err(NetError::PeerDown { peer }) => {
                if peer != 0 && live.contains(&peer) {
                    return Ok(AttemptEnd::Victim(peer));
                }
                continue; // an already-recovered-from death
            }
            Err(NetError::Deadline { .. }) => return Ok(AttemptEnd::Victim(straggler())),
            Err(e) => return Err(e.into()),
        };
        let from = msg.from;
        if from == 0 || from >= spec.nodes || !live.contains(&from) {
            continue;
        }
        if !acked[from] {
            // The ack barrier: everything a worker sent before its ack
            // for *this* attempt is stale-attempt traffic. Per-link
            // FIFO (the sequencing layer) makes this airtight.
            if let Payload::Control(Control::Job(bytes)) = &msg.payload {
                if let Ok(JobMsg::Ack { attempt: a }) = JobMsg::decode(bytes) {
                    if a == attempt {
                        acked[from] = true;
                    }
                }
            }
            continue;
        }
        match msg.payload {
            Payload::Data { kind, page } => {
                agg.push_page(kind, &page, clock).map_err(ExecError::from)?;
            }
            Payload::Control(Control::EndOfStream) => eos[from] = true,
            Payload::Control(Control::Abort { origin, .. }) => {
                // A worker hit an unrecoverable local error and told us
                // before exiting: same recovery path as a silent death.
                let victim = if origin < spec.nodes { origin } else { from };
                return Ok(AttemptEnd::Victim(victim));
            }
            Payload::Control(_) => {} // stray (late EndOfPhase etc.)
        }
    }
}
