//! The worker loop: wait for an attempt dispatch, ack it, aggregate
//! the owned partitions locally, and ship the partials to the
//! coordinator — as many times as recovery demands, until `Finish`.

use crate::proto::JobMsg;
use crate::spec::ClusterSpec;
use crate::{ClusterError, Progress};
use adaptagg_algos::common::{local_partial_aggregation, ship_partials_to};
use adaptagg_exec::{ExecError, NodeCtx};
use adaptagg_model::CostParams;
use adaptagg_net::{Control, Endpoint, NetError, Payload};
use adaptagg_storage::SimDisk;
use std::time::Duration;

/// The coordinator's node id.
pub const COORDINATOR: usize = 0;

/// Worker knobs.
#[derive(Debug, Clone)]
pub struct WorkerOpts {
    /// How long to sit idle (no dispatch, no heartbeat-detected death)
    /// before concluding the coordinator is wedged and exiting.
    pub idle_timeout: Duration,
    /// Test hook: sleep this long after acking an attempt, before
    /// scanning — widens the window in which a kill lands mid-query.
    pub slow_scan: Duration,
    /// Aggregator memory bound.
    pub max_entries: usize,
    /// Overflow-bucket fanout.
    pub fanout: usize,
}

impl Default for WorkerOpts {
    fn default() -> Self {
        WorkerOpts {
            idle_timeout: Duration::from_secs(120),
            slow_scan: Duration::ZERO,
            max_entries: CostParams::paper_default().max_hash_entries,
            fanout: 4,
        }
    }
}

/// What a finished worker reports.
#[derive(Debug)]
pub struct WorkerReport {
    /// Attempts this worker ran to completion (acked and shipped).
    pub attempts_run: usize,
    /// Result-row count the coordinator announced in `Finish`.
    pub rows_reported: u64,
}

/// Run a worker node over an established endpoint until the
/// coordinator announces completion (`Ok`), dies (`Err`), or this
/// worker hits an unrecoverable local error (`Err`, after telling the
/// coordinator via `Abort` so it can reassign without waiting for a
/// heartbeat timeout).
pub fn run_worker(
    mut endpoint: Endpoint,
    spec: &ClusterSpec,
    opts: &WorkerOpts,
    progress: Progress<'_>,
) -> Result<WorkerReport, ClusterError> {
    let me = endpoint.node();
    assert!(me != COORDINATOR, "workers are nodes 1..n");
    let partitions = spec.partitions();
    let plan = spec.plan();
    let params = CostParams::paper_default();
    let mut attempts_run = 0usize;

    loop {
        let msg = match endpoint.recv_timeout(opts.idle_timeout) {
            Ok(msg) => msg,
            // A fellow worker died; the coordinator owns recovery — a
            // worker just keeps serving dispatches.
            Err(NetError::PeerDown { peer }) if peer != COORDINATOR => continue,
            Err(e) => return Err(e.into()),
        };
        match msg.payload {
            Payload::Control(Control::Job(bytes)) => match JobMsg::decode(&bytes) {
                Ok(JobMsg::Start { attempt, owners }) => {
                    endpoint.send_control(
                        COORDINATOR,
                        Control::Job(JobMsg::Ack { attempt }.encode()),
                        0.0,
                    )?;
                    progress(&format!("attempt {attempt}: scanning"));
                    if !opts.slow_scan.is_zero() {
                        std::thread::sleep(opts.slow_scan);
                    }
                    let base = spec.base_for(&partitions, &owners, me as u32);
                    let disk = SimDisk::with_base_partition(base);
                    let mut ctx = NodeCtx::new(endpoint, disk, params.clone());
                    let result = local_partial_aggregation(
                        &mut ctx,
                        &plan,
                        opts.max_entries,
                        opts.fanout,
                    )
                    .and_then(|(partials, _)| {
                        ship_partials_to(&mut ctx, COORDINATOR, &plan, partials)
                    });
                    endpoint = ctx.into_endpoint();
                    match result {
                        Ok(()) => {
                            attempts_run += 1;
                            progress(&format!("attempt {attempt}: partials shipped"));
                        }
                        Err(ExecError::Net(NetError::PeerDown {
                            peer: COORDINATOR,
                        })) => {
                            return Err(ClusterError::Net(NetError::PeerDown {
                                peer: COORDINATOR,
                            }))
                        }
                        Err(e) => {
                            // Tell the coordinator before bailing so it
                            // recovers immediately instead of waiting
                            // out a heartbeat timeout.
                            let _ = endpoint.send_control(
                                COORDINATOR,
                                Control::Abort {
                                    origin: me,
                                    reason: e.to_string(),
                                },
                                0.0,
                            );
                            return Err(e.into());
                        }
                    }
                }
                Ok(JobMsg::Finish { rows }) => {
                    progress(&format!("finish: {rows} row(s) cluster-wide"));
                    return Ok(WorkerReport {
                        attempts_run,
                        rows_reported: rows,
                    });
                }
                Ok(JobMsg::Ack { .. }) => {
                    return Err(ClusterError::Protocol("worker received an Ack"))
                }
                Err(e) => return Err(ClusterError::Net(NetError::Frame(e))),
            },
            Payload::Control(Control::Abort { origin, reason }) => {
                return Err(ClusterError::Aborted { origin, reason })
            }
            // Stray traffic (a late EndOfPhase, a data page misrouted
            // by a dying peer): ignore — the job protocol is resilient
            // to leftovers by construction.
            Payload::Control(_) | Payload::Data { .. } => {}
        }
    }
}
