//! The worker loop: wait for an attempt dispatch, ack it, aggregate
//! the owned partitions locally, and ship the partials to the
//! coordinator — as many times as recovery demands, until `Finish`.

use crate::proto::JobMsg;
use crate::spec::ClusterSpec;
use crate::{ClusterError, Progress};
use adaptagg_algos::common::{local_partial_aggregation, ship_partials_to};
use adaptagg_exec::{ExecError, NodeCtx};
use adaptagg_model::CostParams;
use adaptagg_net::{Control, Endpoint, Message, NetError, Payload};
use adaptagg_storage::SimDisk;
use std::time::{Duration, Instant};

/// The coordinator's node id.
pub const COORDINATOR: usize = 0;

/// Chunk size for the serving-mode idle wait: how often a parked
/// worker re-checks whether the coordinator left gracefully.
const SERVE_POLL: Duration = Duration::from_millis(50);

/// One idle wait for the next dispatch. In serving mode the wait is
/// chunked so the worker notices a *graceful* coordinator departure —
/// a transport-level goodbye surfaces no receive error, by design —
/// within [`SERVE_POLL`] instead of sitting out the whole idle
/// timeout. The departure is normalized to `PeerDown { COORDINATOR }`
/// so the caller has one exit path for graceful and abrupt teardown.
fn recv_dispatch(endpoint: &mut Endpoint, opts: &WorkerOpts) -> Result<Message, NetError> {
    if !opts.serve {
        return endpoint.recv_timeout(opts.idle_timeout);
    }
    let start = Instant::now();
    loop {
        if endpoint.peer_gone(COORDINATOR) {
            return Err(NetError::PeerDown { peer: COORDINATOR });
        }
        let remaining = opts.idle_timeout.saturating_sub(start.elapsed());
        if remaining.is_zero() {
            return Err(NetError::Deadline {
                waited_ms: opts.idle_timeout.as_millis() as u64,
            });
        }
        match endpoint.recv_timeout(remaining.min(SERVE_POLL)) {
            Err(NetError::Deadline { .. }) => continue,
            other => return other,
        }
    }
}

/// Worker knobs.
#[derive(Debug, Clone)]
pub struct WorkerOpts {
    /// How long to sit idle (no dispatch, no heartbeat-detected death)
    /// before concluding the coordinator is wedged and exiting.
    pub idle_timeout: Duration,
    /// Test hook: sleep this long after acking an attempt, before
    /// scanning — widens the window in which a kill lands mid-query.
    pub slow_scan: Duration,
    /// Aggregator memory bound.
    pub max_entries: usize,
    /// Overflow-bucket fanout.
    pub fanout: usize,
    /// Serving mode: stay on the mesh after `Finish` and keep taking
    /// dispatches for further queries. The worker then exits cleanly
    /// when the coordinator goes away (its teardown is the shutdown
    /// signal), instead of treating that as a failure.
    pub serve: bool,
    /// Intra-node morsel worker threads for the local scan. Results
    /// and virtual times are thread-count-invariant; only wall-clock
    /// moves.
    pub threads: usize,
}

impl Default for WorkerOpts {
    fn default() -> Self {
        WorkerOpts {
            idle_timeout: Duration::from_secs(120),
            slow_scan: Duration::ZERO,
            max_entries: CostParams::paper_default().max_hash_entries,
            fanout: 4,
            serve: false,
            threads: 1,
        }
    }
}

/// What a finished worker reports.
#[derive(Debug)]
pub struct WorkerReport {
    /// Attempts this worker ran to completion (acked and shipped).
    pub attempts_run: usize,
    /// Result-row count the coordinator announced in the last `Finish`.
    pub rows_reported: u64,
    /// Queries this worker saw through to `Finish`.
    pub queries_finished: usize,
}

/// Run a worker node over an established endpoint until the
/// coordinator announces completion (`Ok`), dies (`Err`), or this
/// worker hits an unrecoverable local error (`Err`, after telling the
/// coordinator via `Abort` so it can reassign without waiting for a
/// heartbeat timeout).
pub fn run_worker(
    mut endpoint: Endpoint,
    spec: &ClusterSpec,
    opts: &WorkerOpts,
    progress: Progress<'_>,
) -> Result<WorkerReport, ClusterError> {
    let me = endpoint.node();
    assert!(me != COORDINATOR, "workers are nodes 1..n");
    let partitions = spec.partitions();
    let plan = spec.plan();
    let params = CostParams::paper_default();
    let mut attempts_run = 0usize;
    let mut queries_finished = 0usize;
    let mut rows_reported = 0u64;

    loop {
        let msg = match recv_dispatch(&mut endpoint, opts) {
            Ok(msg) => msg,
            // A fellow worker died; the coordinator owns recovery — a
            // worker just keeps serving dispatches.
            Err(NetError::PeerDown { peer }) if peer != COORDINATOR => continue,
            // In serving mode the coordinator's teardown IS the
            // shutdown signal: exit cleanly with what we served. The
            // mesh draining completely (`Disconnected`) implies the
            // coordinator is among the departed, so it exits the same
            // way.
            Err(NetError::PeerDown { peer: COORDINATOR }) | Err(NetError::Disconnected)
                if opts.serve =>
            {
                progress("coordinator left; shutting down");
                return Ok(WorkerReport {
                    attempts_run,
                    rows_reported,
                    queries_finished,
                });
            }
            Err(e) => return Err(e.into()),
        };
        match msg.payload {
            Payload::Control(Control::Job(bytes)) => match JobMsg::decode(&bytes) {
                Ok(JobMsg::Start { attempt, owners }) => {
                    endpoint.send_control(
                        COORDINATOR,
                        Control::Job(JobMsg::Ack { attempt }.encode()),
                        0.0,
                    )?;
                    progress(&format!("attempt {attempt}: scanning"));
                    if !opts.slow_scan.is_zero() {
                        std::thread::sleep(opts.slow_scan);
                    }
                    let base = spec.base_for(&partitions, &owners, me as u32);
                    let disk = SimDisk::with_base_partition(base);
                    let mut ctx = NodeCtx::new(endpoint, disk, params.clone());
                    ctx.set_threads(opts.threads);
                    let result = local_partial_aggregation(
                        &mut ctx,
                        &plan,
                        opts.max_entries,
                        opts.fanout,
                    )
                    .and_then(|(partials, _)| {
                        ship_partials_to(&mut ctx, COORDINATOR, &plan, partials)
                    });
                    endpoint = ctx.into_endpoint();
                    match result {
                        Ok(()) => {
                            attempts_run += 1;
                            progress(&format!("attempt {attempt}: partials shipped"));
                        }
                        Err(ExecError::Net(NetError::PeerDown {
                            peer: COORDINATOR,
                        })) => {
                            return Err(ClusterError::Net(NetError::PeerDown {
                                peer: COORDINATOR,
                            }))
                        }
                        Err(e) => {
                            // Tell the coordinator before bailing so it
                            // recovers immediately instead of waiting
                            // out a heartbeat timeout.
                            let _ = endpoint.send_control(
                                COORDINATOR,
                                Control::Abort {
                                    origin: me,
                                    reason: e.to_string(),
                                },
                                0.0,
                            );
                            return Err(e.into());
                        }
                    }
                }
                Ok(JobMsg::Finish { rows }) => {
                    queries_finished += 1;
                    rows_reported = rows;
                    progress(&format!(
                        "finish: {rows} row(s) cluster-wide (query #{queries_finished})"
                    ));
                    if opts.serve {
                        // Serving mode: stay on the mesh for the next
                        // query's dispatch.
                        continue;
                    }
                    return Ok(WorkerReport {
                        attempts_run,
                        rows_reported,
                        queries_finished,
                    });
                }
                Ok(JobMsg::Ack { .. }) => {
                    return Err(ClusterError::Protocol("worker received an Ack"))
                }
                Err(e) => return Err(ClusterError::Net(NetError::Frame(e))),
            },
            Payload::Control(Control::Abort { origin, reason }) => {
                return Err(ClusterError::Aborted { origin, reason })
            }
            // Stray traffic (a late EndOfPhase, a data page misrouted
            // by a dying peer): ignore — the job protocol is resilient
            // to leftovers by construction.
            Payload::Control(_) | Payload::Data { .. } => {}
        }
    }
}
