//! The job protocol the coordinator and workers speak, carried as
//! opaque bytes inside [`adaptagg_net::Control::Job`] so the transport
//! and reliability layers need not know about it.
//!
//! Three messages make an attempt:
//!
//! - `Start { attempt, owners }` — coordinator → workers. `owners[p]`
//!   is the node id currently responsible for partition `p`.
//! - `Ack { attempt }` — worker → coordinator, sent *before* any data
//!   of that attempt. Per-link FIFO makes this a barrier: everything
//!   from that worker before the ack is stale-attempt traffic.
//! - `Finish { rows }` — coordinator → workers: result is in, exit 0.
//!
//! The codec reuses the frame crate's bounds-checked reader, so a
//! corrupt job payload surfaces as a typed [`FrameError`], never a
//! panic.

use adaptagg_net::frame::FrameReader;
use adaptagg_net::FrameError;

const TAG_START: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_FINISH: u8 = 3;

/// Cap on the ownership map length, re-validated on decode so a corrupt
/// length prefix cannot drive a huge allocation.
const MAX_OWNERS: u32 = 1 << 16;

/// One message of the coordinator↔worker job protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobMsg {
    /// Run attempt `attempt` with this partition→node ownership map.
    Start { attempt: u32, owners: Vec<u32> },
    /// Worker's attempt barrier: data after this belongs to `attempt`.
    Ack { attempt: u32 },
    /// The query completed with this many result rows; workers exit 0.
    Finish { rows: u64 },
}

impl JobMsg {
    /// Encode into the byte payload of a `Control::Job`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            JobMsg::Start { attempt, owners } => {
                out.push(TAG_START);
                out.extend_from_slice(&attempt.to_le_bytes());
                out.extend_from_slice(&(owners.len() as u32).to_le_bytes());
                for &o in owners {
                    out.extend_from_slice(&o.to_le_bytes());
                }
            }
            JobMsg::Ack { attempt } => {
                out.push(TAG_ACK);
                out.extend_from_slice(&attempt.to_le_bytes());
            }
            JobMsg::Finish { rows } => {
                out.push(TAG_FINISH);
                out.extend_from_slice(&rows.to_le_bytes());
            }
        }
        out
    }

    /// Decode a `Control::Job` payload. Truncated, oversized, or
    /// trailing-garbage input yields a typed error.
    pub fn decode(buf: &[u8]) -> Result<JobMsg, FrameError> {
        let mut r = FrameReader::new(buf);
        let msg = match r.u8()? {
            TAG_START => {
                let attempt = r.u32()?;
                let count = r.u32()?;
                if count > MAX_OWNERS {
                    return Err(FrameError::Corrupt("owners length"));
                }
                // Cap pre-allocation by what the buffer can actually
                // hold; a lying length fails on the first short read.
                let mut owners = Vec::with_capacity((count as usize).min(r.remaining() / 4 + 1));
                for _ in 0..count {
                    owners.push(r.u32()?);
                }
                JobMsg::Start { attempt, owners }
            }
            TAG_ACK => JobMsg::Ack { attempt: r.u32()? },
            TAG_FINISH => JobMsg::Finish { rows: r.u64()? },
            _ => return Err(FrameError::Corrupt("job tag")),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_every_variant() {
        let msgs = [
            JobMsg::Start {
                attempt: 3,
                owners: vec![1, 2, 1, 4],
            },
            JobMsg::Start {
                attempt: 1,
                owners: Vec::new(),
            },
            JobMsg::Ack { attempt: 7 },
            JobMsg::Finish { rows: u64::MAX },
        ];
        for m in msgs {
            assert_eq!(JobMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        let full = JobMsg::Start {
            attempt: 9,
            owners: vec![1, 2, 3],
        }
        .encode();
        for cut in 0..full.len() {
            let err = JobMsg::decode(&full[..cut]).unwrap_err();
            assert_eq!(err, FrameError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_corrupt() {
        assert!(matches!(
            JobMsg::decode(&[99]),
            Err(FrameError::Corrupt("job tag"))
        ));
        let mut full = JobMsg::Ack { attempt: 1 }.encode();
        full.push(0);
        assert!(matches!(
            JobMsg::decode(&full),
            Err(FrameError::Corrupt(_))
        ));
    }

    #[test]
    fn lying_owner_count_cannot_drive_allocation() {
        // Declares 2^16 owners but carries none: must fail Truncated
        // without allocating gigabytes first.
        let mut buf = vec![TAG_START];
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&MAX_OWNERS.to_le_bytes());
        assert_eq!(JobMsg::decode(&buf).unwrap_err(), FrameError::Truncated);
        // And past the cap it is rejected outright.
        let mut buf = vec![TAG_START];
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&(MAX_OWNERS + 1).to_le_bytes());
        assert_eq!(
            JobMsg::decode(&buf).unwrap_err(),
            FrameError::Corrupt("owners length")
        );
    }
}
