//! The shared cluster specification: everything every process must
//! agree on, compressed to a few integers so nothing but partial
//! aggregates ever crosses the wire.

use adaptagg_algos::common::QueryPlan;
use adaptagg_storage::HeapFile;
use adaptagg_workload::{default_query, generate_partitions, RelationSpec};

/// What the whole cluster computes: node 0 coordinates, nodes
/// `1..nodes` each own one base partition of a deterministic uniform
/// relation. All processes are launched with the same spec (same CLI
/// arguments), regenerate identical partitions locally, and run the
/// study's default query over them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Total process count including the coordinator (node 0).
    pub nodes: usize,
    /// Relation cardinality.
    pub tuples: usize,
    /// Number of distinct groups.
    pub groups: usize,
    /// Workload seed — identical seeds yield identical partitions in
    /// every process.
    pub seed: u64,
}

impl ClusterSpec {
    /// Number of worker nodes (and of base partitions).
    pub fn workers(&self) -> usize {
        self.nodes.saturating_sub(1)
    }

    /// Regenerate the base partitions, one per worker. Partition `p` is
    /// initially owned by worker node `p + 1`.
    pub fn partitions(&self) -> Vec<HeapFile> {
        let spec = RelationSpec::uniform(self.tuples, self.groups).with_seed(self.seed);
        generate_partitions(&spec, self.workers())
    }

    /// Compile the study's default query.
    pub fn plan(&self) -> QueryPlan {
        QueryPlan::new(&default_query())
    }

    /// The attempt-1 ownership map: partition `p` → node `p + 1`.
    pub fn initial_owners(&self) -> Vec<u32> {
        (0..self.workers()).map(|p| (p + 1) as u32).collect()
    }

    /// Concatenate the partitions `owners` assigns to node `me` into
    /// one base heap file (ascending by partition id, matching the
    /// in-process runtime's reassignment layout).
    pub fn base_for(&self, partitions: &[HeapFile], owners: &[u32], me: u32) -> HeapFile {
        let page_bytes = partitions
            .first()
            .map(|p| p.page_bytes())
            .unwrap_or(4096);
        let mut pages = Vec::new();
        for (p, part) in partitions.iter().enumerate() {
            if owners.get(p).copied() != Some(me) {
                continue;
            }
            for pi in 0..part.page_count() {
                pages.push(part.page(pi).expect("partition page").clone());
            }
        }
        HeapFile::from_pages(page_bytes, pages).expect("concatenated partition")
    }
}

/// Reassign every partition `victim` owned to the live workers,
/// fewest-loaded-first (ties to the lowest node id) — the same policy
/// as the in-process recovery loop. Returns how many partitions moved.
pub fn reassign_partitions(owners: &mut [u32], victim: u32, live: &[u32]) -> usize {
    let mut moved = 0;
    for p in 0..owners.len() {
        if owners[p] != victim {
            continue;
        }
        let heir = live
            .iter()
            .copied()
            .min_by_key(|&w| (owners.iter().filter(|&&o| o == w).count(), w))
            .expect("reassignment requires a live worker");
        owners[p] = heir;
        moved += 1;
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec {
            nodes: 4,
            tuples: 900,
            groups: 12,
            seed: 42,
        }
    }

    #[test]
    fn partitions_are_deterministic_across_regenerations() {
        let a = spec().partitions();
        let b = spec().partitions();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tuple_count(), y.tuple_count());
            let xs: Vec<_> = x.iter_untracked().collect::<Result<_, _>>().unwrap();
            let ys: Vec<_> = y.iter_untracked().collect::<Result<_, _>>().unwrap();
            assert_eq!(xs, ys);
        }
    }

    #[test]
    fn initial_ownership_covers_every_partition_once() {
        assert_eq!(spec().initial_owners(), vec![1, 2, 3]);
    }

    #[test]
    fn base_for_collects_exactly_the_owned_partitions() {
        let s = spec();
        let parts = s.partitions();
        let owners = vec![1, 3, 3];
        let total: usize = parts.iter().map(|p| p.tuple_count()).sum();
        let b1 = s.base_for(&parts, &owners, 1);
        let b2 = s.base_for(&parts, &owners, 2);
        let b3 = s.base_for(&parts, &owners, 3);
        assert_eq!(b1.tuple_count(), parts[0].tuple_count());
        assert_eq!(b2.tuple_count(), 0);
        assert_eq!(b3.tuple_count(), total - parts[0].tuple_count());
    }

    #[test]
    fn reassignment_is_fewest_loaded_first_and_complete() {
        // Worker 2 dies holding two partitions; 1 already holds two, 3
        // holds one — the first orphan lands on the lighter node 3,
        // which ties the load, so the second goes to the lower id 1.
        let mut owners = vec![1, 1, 2, 2, 3];
        let moved = reassign_partitions(&mut owners, 2, &[1, 3]);
        assert_eq!(moved, 2);
        assert!(!owners.contains(&2));
        assert_eq!(owners, vec![1, 1, 3, 1, 3].as_slice());
        // Second death: everything lands on the survivor.
        let moved = reassign_partitions(&mut owners, 3, &[1]);
        assert_eq!(moved, 2);
        assert_eq!(owners, vec![1; 5].as_slice());
    }
}
