//! Hand-rolled argument parsing shared by the two cluster binaries
//! (this workspace takes no CLI dependency).

use crate::spec::ClusterSpec;
use adaptagg_net::TcpConfig;
use std::net::SocketAddr;
use std::time::Duration;

/// Usage text for `adaptagg-coordinator`.
pub const COORDINATOR_USAGE: &str = "\
adaptagg-coordinator — run one aggregation query across real processes

USAGE:
  adaptagg-coordinator --cluster ADDR0,ADDR1,... [OPTIONS]

  ADDR0 is this coordinator's listen address; ADDR1.. are the workers'
  (start each worker with the same --cluster list and its --node index).

OPTIONS:
  --tuples N                relation cardinality        [default: 20000]
  --groups N                distinct groups             [default: 64]
  --seed N                  workload seed               [default: 1]
  --max-attempts N          recovery attempt budget     [default: one per worker]
  --attempt-timeout-ms N    per-attempt deadline        [default: 30000]
  --heartbeat-ms N          heartbeat interval          [default: 50]
  --heartbeat-timeout-ms N  silence = death threshold   [default: 2000]

EXIT CODES:
  0  success
  2  the query ran but fault recovery was exhausted
  1  any other failure (arguments, connectivity, execution)
";

/// Usage text for `adaptagg-worker`.
pub const WORKER_USAGE: &str = "\
adaptagg-worker — serve one worker node of an adaptagg cluster

USAGE:
  adaptagg-worker --node I --cluster ADDR0,ADDR1,... [OPTIONS]

  --node I selects this worker's address (and partition) from the
  cluster list; node 0 is the coordinator. Workload options must match
  the coordinator's — every process regenerates the data from them.

OPTIONS:
  --tuples N                relation cardinality        [default: 20000]
  --groups N                distinct groups             [default: 64]
  --seed N                  workload seed               [default: 1]
  --idle-timeout-ms N       exit if coordinator silent  [default: 120000]
  --slow-scan-ms N          test hook: delay each scan  [default: 0]
  --threads N               morsel worker threads for the local scan
                            [default: ADAPTAGG_THREADS or 1]
  --heartbeat-ms N          heartbeat interval          [default: 50]
  --heartbeat-timeout-ms N  silence = death threshold   [default: 2000]
  --serve                   serving mode: keep taking queries after
                            Finish; exit 0 when the coordinator leaves

EXIT CODES:
  0  coordinator announced completion (serving: coordinator left)
  1  any failure (arguments, connectivity, coordinator death)
";

/// Parsed arguments for either binary.
#[derive(Debug, Clone)]
pub struct BinArgs {
    /// This process's node id (0 for the coordinator).
    pub node: usize,
    /// Every node's listen address, in node order.
    pub cluster: Vec<SocketAddr>,
    pub tuples: usize,
    pub groups: usize,
    pub seed: u64,
    /// 0 means "one attempt per worker" (resolved by the coordinator).
    pub max_attempts: usize,
    pub attempt_timeout: Duration,
    pub idle_timeout: Duration,
    pub slow_scan: Duration,
    pub heartbeat_interval: Duration,
    pub heartbeat_timeout: Duration,
    /// Worker serving mode (`--serve`).
    pub serve: bool,
    /// Intra-node morsel worker threads for the local scan
    /// (`--threads`, workers only; defaults from `ADAPTAGG_THREADS`).
    pub threads: usize,
    /// `--help` was requested.
    pub help: bool,
}

impl BinArgs {
    /// The cluster spec all processes must agree on.
    pub fn spec(&self) -> ClusterSpec {
        ClusterSpec {
            nodes: self.cluster.len(),
            tuples: self.tuples,
            groups: self.groups,
            seed: self.seed,
        }
    }

    /// Transport config derived from the heartbeat flags. Seeded by the
    /// node id so concurrent processes jitter their reconnect backoff
    /// differently.
    pub fn tcp_config(&self) -> TcpConfig {
        let mut cfg = TcpConfig::default().with_seed(self.seed ^ self.node as u64);
        cfg.heartbeat_interval = self.heartbeat_interval;
        cfg.heartbeat_timeout = self.heartbeat_timeout;
        cfg
    }
}

/// Parse `argv` (without the program name). `coordinator` toggles the
/// flags each binary accepts.
pub fn parse(argv: &[String], coordinator: bool) -> Result<BinArgs, String> {
    let mut args = BinArgs {
        node: if coordinator { 0 } else { usize::MAX },
        cluster: Vec::new(),
        tuples: 20_000,
        groups: 64,
        seed: 1,
        max_attempts: 0,
        attempt_timeout: Duration::from_millis(30_000),
        idle_timeout: Duration::from_millis(120_000),
        slow_scan: Duration::ZERO,
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(2_000),
        serve: false,
        threads: std::env::var("ADAPTAGG_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1usize)
            .max(1),
        help: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        if matches!(flag.as_str(), "--help" | "-h" | "help") {
            args.help = true;
            return Ok(args);
        }
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--cluster" => {
                args.cluster = value("--cluster")?
                    .split(',')
                    .map(|a| {
                        a.parse::<SocketAddr>()
                            .map_err(|e| format!("bad address {a:?}: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--node" if !coordinator => {
                args.node = parse_num(value("--node")?, "--node")?;
            }
            "--tuples" => args.tuples = parse_num(value("--tuples")?, "--tuples")?,
            "--groups" => args.groups = parse_num(value("--groups")?, "--groups")?,
            "--seed" => args.seed = parse_num(value("--seed")?, "--seed")?,
            "--max-attempts" if coordinator => {
                args.max_attempts = parse_num(value("--max-attempts")?, "--max-attempts")?;
            }
            "--attempt-timeout-ms" if coordinator => {
                args.attempt_timeout =
                    Duration::from_millis(parse_num(value("--attempt-timeout-ms")?, "--attempt-timeout-ms")?);
            }
            "--idle-timeout-ms" if !coordinator => {
                args.idle_timeout =
                    Duration::from_millis(parse_num(value("--idle-timeout-ms")?, "--idle-timeout-ms")?);
            }
            "--slow-scan-ms" if !coordinator => {
                args.slow_scan =
                    Duration::from_millis(parse_num(value("--slow-scan-ms")?, "--slow-scan-ms")?);
            }
            "--serve" if !coordinator => args.serve = true,
            "--threads" if !coordinator => {
                args.threads = parse_num::<usize>(value("--threads")?, "--threads")?.max(1);
            }
            "--heartbeat-ms" => {
                args.heartbeat_interval =
                    Duration::from_millis(parse_num(value("--heartbeat-ms")?, "--heartbeat-ms")?);
            }
            "--heartbeat-timeout-ms" => {
                args.heartbeat_timeout =
                    Duration::from_millis(parse_num(value("--heartbeat-timeout-ms")?, "--heartbeat-timeout-ms")?);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.cluster.len() < 2 {
        return Err("--cluster needs at least two addresses (coordinator + 1 worker)".into());
    }
    if coordinator {
        args.node = 0;
    } else {
        if args.node == usize::MAX {
            return Err("--node is required for workers".into());
        }
        if args.node == 0 || args.node >= args.cluster.len() {
            return Err(format!(
                "--node must be in 1..{} (0 is the coordinator)",
                args.cluster.len()
            ));
        }
    }
    if args.tuples == 0 || args.groups == 0 {
        return Err("--tuples and --groups must be positive".into());
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse::<T>()
        .map_err(|_| format!("{flag}: not a valid number: {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn coordinator_args_parse_with_defaults() {
        let a = parse(
            &sv(&["--cluster", "127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002"]),
            true,
        )
        .unwrap();
        assert_eq!(a.node, 0);
        assert_eq!(a.cluster.len(), 3);
        assert_eq!(a.spec().workers(), 2);
        assert_eq!(a.tuples, 20_000);
        assert_eq!(a.max_attempts, 0);
    }

    #[test]
    fn worker_requires_a_valid_node_index() {
        let base = ["--cluster", "127.0.0.1:7000,127.0.0.1:7001"];
        assert!(parse(&sv(&base), false).unwrap_err().contains("--node"));
        let mut with0 = sv(&base);
        with0.extend(sv(&["--node", "0"]));
        assert!(parse(&with0, false).unwrap_err().contains("coordinator"));
        let mut ok = sv(&base);
        ok.extend(sv(&["--node", "1", "--slow-scan-ms", "250"]));
        let a = parse(&ok, false).unwrap();
        assert_eq!(a.node, 1);
        assert_eq!(a.slow_scan, Duration::from_millis(250));
    }

    #[test]
    fn unknown_and_misaddressed_flags_are_rejected() {
        assert!(parse(&sv(&["--bogus"]), true).is_err());
        // A worker-only flag is unknown to the coordinator.
        let r = parse(
            &sv(&["--cluster", "127.0.0.1:1,127.0.0.1:2", "--slow-scan-ms", "5"]),
            true,
        );
        assert!(r.is_err());
        assert!(parse(&sv(&["--cluster", "notanaddr,127.0.0.1:2"]), true)
            .unwrap_err()
            .contains("bad address"));
    }

    #[test]
    fn heartbeat_flags_reach_the_tcp_config() {
        let a = parse(
            &sv(&[
                "--cluster",
                "127.0.0.1:7000,127.0.0.1:7001",
                "--heartbeat-ms",
                "25",
                "--heartbeat-timeout-ms",
                "700",
            ]),
            true,
        )
        .unwrap();
        let cfg = a.tcp_config();
        assert_eq!(cfg.heartbeat_interval, Duration::from_millis(25));
        assert_eq!(cfg.heartbeat_timeout, Duration::from_millis(700));
    }
}
