//! The raw wire under the fabric's reliability layer.
//!
//! [`Transport`] is the seam between the deterministic messaging
//! machinery ([`crate::Endpoint`]: sequence stamping, fault injection,
//! dedup/reassembly, virtual-time transfer accounting) and the medium
//! that physically moves bytes. Two backends implement it:
//!
//! * [`ChannelTransport`] — the in-process fabric: one unbounded
//!   crossbeam channel per node, loss-free and ordered. This is the
//!   deterministic testing backend.
//! * [`crate::tcp::TcpTransport`] — length-prefixed frames over real
//!   sockets, with heartbeat-based failure detection and reconnection.
//!
//! Everything above the trait is shared, so the chaos suite, the
//! recovery tests, and tracing run unchanged against either backend:
//! swapping the wire swaps only *how* a message travels and *how* a dead
//! peer is discovered, never the protocol semantics.

use crate::error::NetError;
use crate::message::Message;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Which wire a cluster run uses. Carried by the execution layer's
/// cluster config so every test suite can parameterize its backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// The deterministic in-process fabric (crossbeam channels).
    #[default]
    InProcess,
    /// Real TCP sockets over 127.0.0.1, one OS-level connection per
    /// directed link, with heartbeats and reconnection.
    TcpLoopback,
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::InProcess => write!(f, "in-process"),
            TransportKind::TcpLoopback => write!(f, "tcp-loopback"),
        }
    }
}

/// A failed send, handing the undelivered message back so the caller's
/// retry policy can re-attempt it without cloning on the success path.
#[derive(Debug)]
pub struct SendFailure {
    /// The message that was not delivered (boxed: the columnar page
    /// payload makes `Message` wide, and `Result` pays for the `Err`
    /// variant on every send).
    pub msg: Box<Message>,
    /// Why the send failed.
    pub err: NetError,
}

/// The raw wire: moves whole [`Message`]s between nodes.
///
/// ## Contract
///
/// * `send` is non-blocking from the protocol's point of view (it may do
///   bounded I/O, but never waits on the receiver's progress) and fails
///   with a typed error when the destination is unreachable, returning
///   the message for possible retry.
/// * Receives surface messages in per-link FIFO order *as the wire saw
///   them* — duplicates, gaps, and reordering across links are allowed;
///   the layer above reassembles by sequence number.
/// * A receive call returns `Err(NetError::PeerDown { .. })` exactly
///   once per peer the transport has declared dead (failure detection);
///   `Err(NetError::Disconnected)` once nothing can ever arrive again.
/// * Implementations must be `Send`: each endpoint lives on its node's
///   thread.
pub trait Transport: Send + std::fmt::Debug {
    /// This endpoint's node id.
    fn node(&self) -> usize;
    /// Cluster size.
    fn nodes(&self) -> usize;
    /// Push a message toward `to`. On failure the message is returned.
    fn send(&mut self, to: usize, msg: Message) -> Result<(), SendFailure>;
    /// Non-blocking poll for the next wire arrival.
    fn try_recv(&mut self) -> Result<Option<Message>, NetError>;
    /// Blocking receive.
    fn recv(&mut self) -> Result<Message, NetError>;
    /// Blocking receive bounded by a real-time deadline.
    fn recv_deadline(&mut self, timeout: Duration) -> Result<Message, NetError>;
    /// Whether `peer` has left the mesh for good — said a graceful
    /// goodbye or been declared dead — so nothing from it can ever
    /// arrive again. A graceful goodbye deliberately surfaces **no**
    /// receive error (silence from a departed peer is not failure), so
    /// long-lived receivers that care about a specific peer poll this
    /// instead. Backends without a positive departure signal may
    /// under-report ([`ChannelTransport`] always answers `false`):
    /// callers treat `true` as a definite departure and `false` as
    /// "unknown", never as proof of liveness.
    fn peer_gone(&self, _peer: usize) -> bool {
        false
    }
}

/// The in-process wire: unbounded channels, loss-free, always ordered.
/// Sends fail only when the destination endpoint was dropped (its node
/// finished or died), which doubles as instantaneous failure detection.
#[derive(Debug)]
pub struct ChannelTransport {
    node: usize,
    nodes: usize,
    senders: Vec<Sender<Message>>,
    rx: Receiver<Message>,
}

impl ChannelTransport {
    /// Build the full mesh for an `n`-node cluster, one transport per
    /// node, in node order.
    pub fn mesh(n: usize) -> Vec<ChannelTransport> {
        let (senders, receivers): (Vec<Sender<Message>>, Vec<Receiver<Message>>) =
            (0..n).map(|_| unbounded()).unzip();
        receivers
            .into_iter()
            .enumerate()
            .map(|(node, rx)| ChannelTransport {
                node,
                nodes: n,
                senders: senders.clone(),
                rx,
            })
            .collect()
    }
}

impl Transport for ChannelTransport {
    fn node(&self) -> usize {
        self.node
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn send(&mut self, to: usize, msg: Message) -> Result<(), SendFailure> {
        self.senders[to].send(msg).map_err(|failed| SendFailure {
            msg: Box::new(failed.0),
            err: NetError::PeerDown { peer: to },
        })
    }

    fn try_recv(&mut self) -> Result<Option<Message>, NetError> {
        // An empty channel and a fully disconnected one both mean "nothing
        // now" for a poll; blocking receives are the ones that must
        // distinguish (they would otherwise hang forever).
        Ok(self.rx.try_recv().ok())
    }

    fn recv(&mut self) -> Result<Message, NetError> {
        self.rx.recv().map_err(|_| NetError::Disconnected)
    }

    fn recv_deadline(&mut self, timeout: Duration) -> Result<Message, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Deadline {
                waited_ms: timeout.as_millis() as u64,
            },
            RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Control, Payload};

    fn control_msg(from: usize, seq: u64) -> Message {
        Message {
            from,
            seq,
            sent_at_ms: 0.0,
            payload: Payload::Control(Control::EndOfStream),
        }
    }

    #[test]
    fn mesh_assigns_ids_in_order() {
        let mesh = ChannelTransport::mesh(3);
        for (i, t) in mesh.iter().enumerate() {
            assert_eq!(t.node(), i);
            assert_eq!(t.nodes(), 3);
        }
    }

    #[test]
    fn send_and_receive_across_the_mesh() {
        let mut mesh = ChannelTransport::mesh(2);
        let mut b = mesh.pop().unwrap();
        let mut a = mesh.pop().unwrap();
        a.send(1, control_msg(0, 0)).unwrap();
        let msg = b.recv().unwrap();
        assert_eq!(msg.from, 0);
        assert!(b.try_recv().unwrap().is_none());
    }

    #[test]
    fn send_to_dropped_peer_returns_the_message() {
        let mut mesh = ChannelTransport::mesh(2);
        let b = mesh.pop().unwrap();
        let mut a = mesh.pop().unwrap();
        drop(b);
        let failed = a.send(1, control_msg(0, 7)).unwrap_err();
        assert_eq!(failed.err, NetError::PeerDown { peer: 1 });
        assert_eq!(failed.msg.seq, 7, "undelivered message handed back");
    }

    #[test]
    fn recv_deadline_times_out_typed() {
        let mut mesh = ChannelTransport::mesh(2);
        let mut b = mesh.pop().unwrap();
        let _a = mesh.remove(0);
        assert_eq!(
            b.recv_deadline(Duration::from_millis(10)),
            Err(NetError::Deadline { waited_ms: 10 })
        );
    }

    #[test]
    fn transport_kind_displays() {
        assert_eq!(TransportKind::InProcess.to_string(), "in-process");
        assert_eq!(TransportKind::TcpLoopback.to_string(), "tcp-loopback");
        assert_eq!(TransportKind::default(), TransportKind::InProcess);
    }
}
