//! Messages exchanged between cluster nodes.

use adaptagg_storage::Page;

/// What a data page carries: raw projected tuples or partial rows — the
/// two kinds §3.2's merge phase must handle interleaved. An alias of
/// [`adaptagg_model::RowKind`], which is also the tag on spilled tuples in
/// the hash-aggregation layer.
pub use adaptagg_model::RowKind as DataKind;

/// Control messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Control {
    /// The sender will send no more data *to this receiver* in the current
    /// phase. A phase's receive loop completes when it has one
    /// `EndOfStream` from every expected sender.
    EndOfStream,
    /// Adaptive Repartitioning's switch signal (§3.3): the sender observed
    /// too few groups and is falling back to Adaptive Two Phase; the
    /// receiver should follow suit. Carries the number of distinct groups
    /// the sender had seen, for diagnostics.
    EndOfPhase {
        /// Distinct groups the signalling node had observed.
        groups_seen: u64,
    },
    /// The Sampling coordinator's broadcast decision (§3.1).
    SamplingDecision {
        /// `true` → run Repartitioning; `false` → run Two Phase.
        use_repartitioning: bool,
        /// Groups found in the sample (diagnostics).
        groups_in_sample: u64,
    },
    /// Graceful failure propagation: the sender hit an unrecoverable error
    /// and is shutting down; receivers should stop too instead of waiting
    /// for data that will never come.
    Abort {
        /// The node where the failure originated.
        origin: usize,
        /// Human-readable description of the originating error.
        reason: String,
    },
    /// An opaque application-level control payload — the coordinator /
    /// worker job protocol (attempt assignments, acks, shutdown) rides
    /// here, so it flows through the same sequence/dedup machinery as
    /// every other message and works over every [`crate::Transport`].
    Job(Vec<u8>),
}

/// The payload of a message.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A block of tuples.
    Data {
        /// Raw tuples or partial rows.
        kind: DataKind,
        /// The 2 KB message page.
        page: Page,
    },
    /// A control message.
    Control(Control),
}

impl Payload {
    /// Whether this is a data payload.
    pub fn is_data(&self) -> bool {
        matches!(self, Payload::Data { .. })
    }
}

/// A message on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sending node.
    pub from: usize,
    /// Per-link sequence number, monotone per `(from, to)` pair. Receivers
    /// use it to drop duplicates and reassemble send order when fault
    /// injection perturbs the wire (delivery is
    /// at-least-once-with-dedup, so merges stay exact).
    pub seq: u64,
    /// Sender's virtual time at send *completion* (transfer included).
    /// Receivers advance their clock to at least this value — the Lamport
    /// rule that makes "waiting for data" visible in virtual time.
    pub sent_at_ms: f64,
    /// The payload.
    pub payload: Payload,
}

impl Message {
    /// Number of message pages this message occupies on the wire (control
    /// messages ride in one page; in the real implementation they are
    /// "piggy-backed on the tuples being forwarded", §3.3, so their cost
    /// is negligible — we model them as zero-transfer).
    pub fn transfer_pages(&self) -> u64 {
        match &self.payload {
            Payload::Data { .. } => 1,
            Payload::Control(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_kind_display() {
        assert_eq!(DataKind::Raw.to_string(), "raw");
        assert_eq!(DataKind::Partial.to_string(), "partial");
    }

    #[test]
    fn control_messages_cost_no_transfer() {
        let m = Message {
            from: 0,
            seq: 0,
            sent_at_ms: 1.0,
            payload: Payload::Control(Control::EndOfStream),
        };
        assert_eq!(m.transfer_pages(), 0);
        assert!(!m.payload.is_data());
    }

    #[test]
    fn data_messages_are_one_page() {
        let m = Message {
            from: 2,
            seq: 0,
            sent_at_ms: 0.0,
            payload: Payload::Data {
                kind: DataKind::Raw,
                page: Page::new(2048),
            },
        };
        assert_eq!(m.transfer_pages(), 1);
        assert!(m.payload.is_data());
    }
}
