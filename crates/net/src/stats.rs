//! Per-endpoint network statistics.

use crate::message::DataKind;

/// Counters kept by each endpoint; reported per node in run results so the
/// experiments can show, e.g., that Repartitioning moves ~1/S_l times more
/// data than Two Phase at low selectivity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Data pages sent (raw tuples).
    pub raw_pages_sent: u64,
    /// Data pages sent (partial rows).
    pub partial_pages_sent: u64,
    /// Payload bytes sent in data pages.
    pub bytes_sent: u64,
    /// Tuples sent in data pages.
    pub tuples_sent: u64,
    /// Data pages received.
    pub pages_received: u64,
    /// Tuples received.
    pub tuples_received: u64,
    /// Control messages sent.
    pub control_sent: u64,
    /// Control messages received.
    pub control_received: u64,
    /// Messages the fault plan dropped on this endpoint's outgoing links
    /// (each was retransmitted with a virtual-latency penalty).
    pub injected_drops: u64,
    /// Messages the fault plan duplicated on this endpoint's outgoing links.
    pub injected_dups: u64,
    /// Messages the fault plan held back (reordered) on this endpoint's
    /// outgoing links.
    pub injected_reorders: u64,
    /// Duplicate arrivals this endpoint discarded by sequence number.
    pub dup_dropped: u64,
    /// Failed sends this endpoint re-attempted under its link retry
    /// policy (recovery's bounded retry-with-backoff; 0 when disabled).
    pub send_retries: u64,
}

impl NetStats {
    /// Record a sent data page.
    pub fn on_send_data(&mut self, kind: DataKind, bytes: usize, tuples: usize) {
        match kind {
            DataKind::Raw => self.raw_pages_sent += 1,
            DataKind::Partial => self.partial_pages_sent += 1,
        }
        self.bytes_sent += bytes as u64;
        self.tuples_sent += tuples as u64;
    }

    /// Record a received data page.
    pub fn on_recv_data(&mut self, tuples: usize) {
        self.pages_received += 1;
        self.tuples_received += tuples as u64;
    }

    /// Total data pages sent.
    pub fn pages_sent(&self) -> u64 {
        self.raw_pages_sent + self.partial_pages_sent
    }

    /// Element-wise sum (cluster-wide totals).
    pub fn add(&mut self, other: &NetStats) {
        self.raw_pages_sent += other.raw_pages_sent;
        self.partial_pages_sent += other.partial_pages_sent;
        self.bytes_sent += other.bytes_sent;
        self.tuples_sent += other.tuples_sent;
        self.pages_received += other.pages_received;
        self.tuples_received += other.tuples_received;
        self.control_sent += other.control_sent;
        self.control_received += other.control_received;
        self.injected_drops += other.injected_drops;
        self.injected_dups += other.injected_dups;
        self.injected_reorders += other.injected_reorders;
        self.dup_dropped += other.dup_dropped;
        self.send_retries += other.send_retries;
    }
}

/// Per-destination traffic counters for one outgoing link, kept by the
/// sending endpoint (the observability layer harvests these into the run
/// trace). Plain integer increments on the send path: always on, never
/// allocating after endpoint construction, never touching the cost model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages handed to this link (data + control).
    pub msgs: u64,
    /// Data pages among them.
    pub pages: u64,
    /// Payload bytes of those pages.
    pub bytes: u64,
    /// Tuples carried by those pages.
    pub tuples: u64,
    /// Failed sends re-attempted under the link retry policy.
    pub retries: u64,
    /// Messages the fault plan dropped (then retransmitted) on this link.
    pub drops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_accounting() {
        let mut s = NetStats::default();
        s.on_send_data(DataKind::Raw, 2000, 20);
        s.on_send_data(DataKind::Partial, 1000, 10);
        s.on_recv_data(15);
        assert_eq!(s.pages_sent(), 2);
        assert_eq!(s.raw_pages_sent, 1);
        assert_eq!(s.partial_pages_sent, 1);
        assert_eq!(s.bytes_sent, 3000);
        assert_eq!(s.tuples_sent, 30);
        assert_eq!(s.pages_received, 1);
        assert_eq!(s.tuples_received, 15);
    }

    #[test]
    fn totals_add() {
        let mut a = NetStats::default();
        a.on_send_data(DataKind::Raw, 100, 1);
        let mut b = NetStats::default();
        b.on_send_data(DataKind::Raw, 200, 2);
        b.control_sent = 3;
        a.add(&b);
        assert_eq!(a.bytes_sent, 300);
        assert_eq!(a.tuples_sent, 3);
        assert_eq!(a.control_sent, 3);
    }
}
