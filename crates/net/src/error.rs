//! Typed messaging-layer errors.

use std::fmt;

/// Why a send or receive on the fabric failed. These replace the old
/// `expect(...)` panics: a peer dying mid-run now surfaces as a value the
/// execution layer can attribute and propagate instead of a thread abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The destination endpoint no longer exists — its node's thread has
    /// already returned (crashed or finished early).
    PeerDown {
        /// The unreachable node.
        peer: usize,
    },
    /// Every sender endpoint was dropped while this node was blocked
    /// receiving: nothing can ever arrive again.
    Disconnected,
    /// A real-time receive deadline elapsed (the cluster watchdog — the
    /// backstop against protocol hangs).
    Deadline {
        /// How long the receiver waited, in real milliseconds.
        waited_ms: u64,
    },
    /// A wire frame failed to decode (TCP transport). Always a typed
    /// value, never a panic — a corrupt or malicious peer must not be
    /// able to take a node down.
    Frame(FrameError),
    /// An OS-level I/O failure on the TCP transport, tagged with the
    /// operation that failed. The error kind is kept (not the message) so
    /// `NetError` stays `Copy` and comparable.
    Io {
        /// What the transport was doing (`"bind"`, `"connect"`, …).
        op: &'static str,
        /// The OS error class.
        kind: std::io::ErrorKind,
    },
    /// Cluster establishment did not complete: a peer never finished the
    /// `Hello` handshake within the connect budget.
    Handshake {
        /// How many peers were still missing when the budget ran out.
        missing: usize,
    },
}

/// Why a length-prefixed frame failed to decode. Every variant is a
/// graceful rejection of untrusted input: truncation, corruption, and
/// oversized declarations are detected *before* any allocation larger
/// than [`crate::frame::MAX_FRAME_BYTES`] can happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The input ended before the declared frame did.
    Truncated,
    /// The declared length exceeds the frame cap — rejected before
    /// allocating, so a hostile 4 GB declaration cannot OOM the node.
    Oversized {
        /// The length the header declared.
        declared: u32,
        /// The enforced cap.
        max: u32,
    },
    /// A field failed validation; names the first offending field.
    Corrupt(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::Oversized { declared, max } => {
                write!(f, "frame declares {declared} bytes (cap {max})")
            }
            FrameError::Corrupt(field) => write!(f, "frame corrupt at {field}"),
        }
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::PeerDown { peer } => write!(f, "peer node {peer} is down"),
            NetError::Disconnected => write!(f, "all peers disconnected"),
            NetError::Deadline { waited_ms } => {
                write!(f, "receive deadline elapsed after {waited_ms} ms")
            }
            NetError::Frame(e) => write!(f, "wire frame error: {e}"),
            NetError::Io { op, kind } => write!(f, "transport i/o error during {op}: {kind}"),
            NetError::Handshake { missing } => {
                write!(f, "cluster handshake incomplete: {missing} peer(s) missing")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_peer() {
        assert!(NetError::PeerDown { peer: 3 }.to_string().contains("3"));
        assert!(NetError::Deadline { waited_ms: 250 }
            .to_string()
            .contains("250"));
        assert!(!NetError::Disconnected.to_string().is_empty());
    }
}
