//! Typed messaging-layer errors.

use std::fmt;

/// Why a send or receive on the fabric failed. These replace the old
/// `expect(...)` panics: a peer dying mid-run now surfaces as a value the
/// execution layer can attribute and propagate instead of a thread abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The destination endpoint no longer exists — its node's thread has
    /// already returned (crashed or finished early).
    PeerDown {
        /// The unreachable node.
        peer: usize,
    },
    /// Every sender endpoint was dropped while this node was blocked
    /// receiving: nothing can ever arrive again.
    Disconnected,
    /// A real-time receive deadline elapsed (the cluster watchdog — the
    /// backstop against protocol hangs).
    Deadline {
        /// How long the receiver waited, in real milliseconds.
        waited_ms: u64,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::PeerDown { peer } => write!(f, "peer node {peer} is down"),
            NetError::Disconnected => write!(f, "all peers disconnected"),
            NetError::Deadline { waited_ms } => {
                write!(f, "receive deadline elapsed after {waited_ms} ms")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_peer() {
        assert!(NetError::PeerDown { peer: 3 }.to_string().contains("3"));
        assert!(NetError::Deadline { waited_ms: 250 }
            .to_string()
            .contains("250"));
        assert!(!NetError::Disconnected.to_string().is_empty());
    }
}
