//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] describes every fault a run will suffer, derived
//! entirely from a seed: per-node crashes (a node dies after scanning its
//! K-th tuple), per-node slowdowns (the node's CPU/disk events take
//! `slowdown_factor`× their normal virtual time), and per-link message
//! faults (drop, duplication, reordering).
//!
//! ## Determinism
//!
//! Link faults are decided by a per-link [`SplitMix64`] stream seeded from
//! `(plan seed, from, to)`. Every send on a link draws from that link's
//! stream and nowhere else, and sends on one link are serialized by the
//! sending node's thread — so the k-th message on a link suffers the same
//! fate on every run with the same seed, regardless of how the OS
//! schedules threads. Node faults are plain per-node values, deterministic
//! by construction.
//!
//! ## Failure semantics
//!
//! The fabric models a *reliable transport over a lossy wire* (TCP-like):
//! a dropped message is retransmitted — it arrives late (a fixed
//! virtual-time penalty), never never-at-all; a duplicated message is
//! delivered once (receivers de-duplicate by per-link sequence number);
//! a reordered message is delivered in send order (receivers reassemble
//! by sequence number). Exactness of aggregation results is therefore
//! preserved under arbitrary link-fault schedules; what the faults perturb
//! is *timing* and the order in which polls observe traffic. Crashes are
//! the only fault that aborts a run — surfaced as a typed error by the
//! execution layer, never as a wrong answer.

/// Faults assigned to one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFaults {
    /// Die (with a typed error) immediately after scanning this many
    /// tuples. `None` = never.
    pub crash_at_tuple: Option<u64>,
    /// Multiplier on the virtual duration of the node's CPU and disk
    /// events. `1.0` = nominal speed.
    pub slowdown_factor: f64,
}

impl Default for NodeFaults {
    fn default() -> Self {
        NodeFaults {
            crash_at_tuple: None,
            slowdown_factor: 1.0,
        }
    }
}

impl NodeFaults {
    /// Whether this node runs entirely fault-free.
    pub fn is_benign(&self) -> bool {
        self.crash_at_tuple.is_none() && self.slowdown_factor == 1.0
    }
}

/// Per-message fault probabilities applied to every link.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFaults {
    /// Probability a message is "dropped" — retransmitted, arriving with a
    /// fixed virtual-latency penalty.
    pub drop_prob: f64,
    /// Probability a message is transmitted twice (same sequence number;
    /// the receiver drops the duplicate).
    pub dup_prob: f64,
    /// Probability a *data* message is held back and transmitted after the
    /// link's next message (the receiver reassembles send order).
    pub reorder_prob: f64,
}

impl LinkFaults {
    /// Whether any link fault can fire.
    pub fn any(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0 || self.reorder_prob > 0.0
    }
}

/// The complete, seeded fault schedule for one cluster run.
///
/// `FaultPlan::none()` (the default) injects nothing and adds no cost
/// anywhere on the messaging or execution path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    nodes: Vec<NodeFaults>,
    links: LinkFaults,
}

impl FaultPlan {
    /// The empty plan: no faults, zero overhead.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan carrying a seed, to be populated with the `with_*`
    /// builders (targeted tests).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// A randomized schedule for an `n`-node cluster, fully determined by
    /// `seed`: some runs get link noise, some get crashes, some slowdowns,
    /// many get combinations, a few get nothing.
    pub fn random(seed: u64, n: usize) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let links = if rng.next_f64() < 0.7 {
            LinkFaults {
                drop_prob: rng.next_f64() * 0.12,
                dup_prob: rng.next_f64() * 0.12,
                reorder_prob: rng.next_f64() * 0.12,
            }
        } else {
            LinkFaults::default()
        };
        let nodes = (0..n)
            .map(|_| {
                let crash_at_tuple = if rng.next_f64() < 0.2 {
                    Some(rng.next_below(1200))
                } else {
                    None
                };
                let slowdown_factor = if rng.next_f64() < 0.25 {
                    1.0 + rng.next_f64() * 3.0
                } else {
                    1.0
                };
                NodeFaults {
                    crash_at_tuple,
                    slowdown_factor,
                }
            })
            .collect();
        FaultPlan { seed, nodes, links }
    }

    /// Crash `node` after it scans `tuple` tuples.
    pub fn with_crash(mut self, node: usize, tuple: u64) -> Self {
        self.node_mut(node).crash_at_tuple = Some(tuple);
        self
    }

    /// Slow `node` down by `factor` (≥ 1.0).
    pub fn with_slowdown(mut self, node: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "slowdown factor must be >= 1.0");
        self.node_mut(node).slowdown_factor = factor;
        self
    }

    /// Apply `links` fault probabilities to every link.
    pub fn with_link_faults(mut self, links: LinkFaults) -> Self {
        self.links = links;
        self
    }

    fn node_mut(&mut self, node: usize) -> &mut NodeFaults {
        if self.nodes.len() <= node {
            self.nodes.resize(node + 1, NodeFaults::default());
        }
        &mut self.nodes[node]
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Faults for `node` (default = benign for nodes beyond the plan).
    pub fn node(&self, node: usize) -> NodeFaults {
        self.nodes.get(node).copied().unwrap_or_default()
    }

    /// The uniform per-link fault probabilities.
    pub fn link_faults(&self) -> LinkFaults {
        self.links
    }

    /// Whether any fault anywhere can fire.
    pub fn is_enabled(&self) -> bool {
        self.links.any() || self.nodes.iter().any(|n| !n.is_benign())
    }

    /// Whether any node is scheduled to crash (runs with crashes may
    /// legitimately end in an error; runs without must produce exact
    /// results).
    pub fn has_crash(&self) -> bool {
        self.nodes.iter().any(|n| n.crash_at_tuple.is_some())
    }

    /// The deterministic fault stream for the `from → to` link.
    pub fn link_rng(&self, from: usize, to: usize) -> SplitMix64 {
        // Mix the seed with the link identity so every link gets an
        // independent stream; SplitMix64's finalizer scrambles the
        // low-entropy inputs.
        let mut s = self.seed ^ 0x243f_6a88_85a3_08d3;
        s = s.wrapping_mul(0x100_0000_01b3) ^ (from as u64).wrapping_add(1);
        s = s.wrapping_mul(0x100_0000_01b3) ^ (to as u64).wrapping_add(1);
        SplitMix64::new(s)
    }
}

/// The SplitMix64 generator — tiny, seedable from any 64-bit value, and
/// statistically solid for fault scheduling. Kept local so the net crate
/// stays dependency-free and the streams are stable forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)` (multiply-shift; bias is negligible for the
    /// small `n` used here).
    pub fn next_below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_disabled() {
        let p = FaultPlan::none();
        assert!(!p.is_enabled());
        assert!(!p.has_crash());
        assert!(p.node(5).is_benign());
        assert!(!p.link_faults().any());
    }

    #[test]
    fn builders_target_specific_nodes() {
        let p = FaultPlan::new(7).with_crash(2, 100).with_slowdown(0, 2.5);
        assert!(p.is_enabled());
        assert!(p.has_crash());
        assert_eq!(p.node(2).crash_at_tuple, Some(100));
        assert_eq!(p.node(0).slowdown_factor, 2.5);
        assert!(p.node(1).is_benign());
        assert_eq!(p.seed(), 7);
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        for seed in 0..50 {
            assert_eq!(FaultPlan::random(seed, 8), FaultPlan::random(seed, 8));
        }
        // And not all identical.
        let distinct: std::collections::HashSet<String> = (0..50)
            .map(|s| format!("{:?}", FaultPlan::random(s, 8)))
            .collect();
        assert!(distinct.len() > 40, "only {} distinct plans", distinct.len());
    }

    #[test]
    fn random_plans_cover_fault_space() {
        let plans: Vec<FaultPlan> = (0..200).map(|s| FaultPlan::random(s, 4)).collect();
        assert!(plans.iter().any(|p| p.has_crash()), "no crash in 200 plans");
        assert!(plans.iter().any(|p| !p.is_enabled()), "no benign plan");
        assert!(plans.iter().any(|p| p.link_faults().any()), "no link noise");
        assert!(
            plans
                .iter()
                .any(|p| (0..4).any(|n| p.node(n).slowdown_factor > 1.0)),
            "no slowdown"
        );
    }

    #[test]
    fn link_streams_are_independent_and_stable() {
        let p = FaultPlan::new(42);
        let a: Vec<u64> = {
            let mut r = p.link_rng(0, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = p.link_rng(0, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = p.link_rng(1, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2, "same link, same stream");
        assert_ne!(a, b, "different links, different streams");
    }

    #[test]
    fn splitmix_ranges() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.next_below(10) < 10);
        }
    }
}
