//! Per-destination message blocking.
//!
//! "For efficiency reasons, we decided to block the messages into 2 KB
//! pages" (§5). A [`Blocker`] keeps one open message page per destination
//! node; [`Blocker::add`] returns a sealed page whenever the destination's
//! page fills, and [`Blocker::flush`] drains the partial remainders at
//! end-of-stream. The caller (the exchange operator) sends each sealed
//! page through its [`crate::Endpoint`].

use adaptagg_storage::{Page, PagePool, StorageError};
use adaptagg_model::Value;

/// Accumulates tuples into per-destination message pages.
#[derive(Debug)]
pub struct Blocker {
    message_bytes: usize,
    open: Vec<Page>,
}

impl Blocker {
    /// A blocker for `n` destinations with the given message-page capacity.
    pub fn new(n: usize, message_bytes: usize) -> Self {
        Blocker {
            message_bytes,
            open: (0..n).map(|_| Page::new(message_bytes)).collect(),
        }
    }

    /// Number of destinations.
    pub fn destinations(&self) -> usize {
        self.open.len()
    }

    /// Append a tuple for `dest`. If the destination's page was full, the
    /// sealed page is returned (send it!) and the tuple starts a fresh one.
    pub fn add(&mut self, dest: usize, values: &[Value]) -> Result<Option<Page>, StorageError> {
        let page = &mut self.open[dest];
        if page.try_push(values)? {
            return Ok(None);
        }
        let sealed = std::mem::replace(page, Page::new(self.message_bytes));
        if !self.open[dest].try_push(values)? {
            unreachable!("fresh message page refused a fitting tuple");
        }
        Ok(Some(sealed))
    }

    /// [`Blocker::add`], drawing the replacement page from `pool` instead
    /// of allocating (the sealed page's buffer comes back via
    /// [`PagePool::put`] once the receiver consumes it).
    pub fn add_pooled(
        &mut self,
        dest: usize,
        values: &[Value],
        pool: &mut PagePool,
    ) -> Result<Option<Page>, StorageError> {
        let page = &mut self.open[dest];
        if page.try_push(values)? {
            return Ok(None);
        }
        let sealed = std::mem::replace(page, pool.get(self.message_bytes));
        if !self.open[dest].try_push(values)? {
            unreachable!("fresh message page refused a fitting tuple");
        }
        Ok(Some(sealed))
    }

    /// Drain all non-empty partial pages as `(destination, page)` pairs,
    /// leaving the blocker empty and reusable.
    pub fn flush(&mut self) -> Vec<(usize, Page)> {
        let mut out = Vec::new();
        for (dest, page) in self.open.iter_mut().enumerate() {
            if !page.is_empty() {
                out.push((dest, std::mem::replace(page, Page::new(self.message_bytes))));
            }
        }
        out
    }

    /// Tuples currently buffered (un-flushed) across all destinations.
    pub fn buffered_tuples(&self) -> usize {
        self.open.iter().map(|p| p.tuple_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::Value;

    fn t(i: i64) -> Vec<Value> {
        vec![Value::Int(i)] // 11 bytes encoded
    }

    #[test]
    fn seals_when_destination_page_fills() {
        let mut b = Blocker::new(2, 32); // 2 tuples per message page
        assert!(b.add(0, &t(1)).unwrap().is_none());
        assert!(b.add(0, &t(2)).unwrap().is_none());
        let sealed = b.add(0, &t(3)).unwrap().expect("page should seal");
        assert_eq!(sealed.tuple_count(), 2);
        // Destination 1 untouched.
        assert!(b.add(1, &t(9)).unwrap().is_none());
        assert_eq!(b.buffered_tuples(), 2); // t3 on dest 0, t9 on dest 1
    }

    #[test]
    fn flush_returns_only_non_empty_pages() {
        let mut b = Blocker::new(3, 64);
        b.add(0, &t(1)).unwrap();
        b.add(2, &t(2)).unwrap();
        let mut flushed = b.flush();
        flushed.sort_by_key(|(d, _)| *d);
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed[0].0, 0);
        assert_eq!(flushed[1].0, 2);
        assert_eq!(b.buffered_tuples(), 0);
        // Reusable after flush.
        b.add(1, &t(3)).unwrap();
        assert_eq!(b.buffered_tuples(), 1);
    }

    #[test]
    fn no_tuple_is_lost_or_duplicated() {
        let mut b = Blocker::new(4, 64);
        let mut sealed_tuples = 0;
        for i in 0..1000 {
            if let Some(p) = b.add((i % 4) as usize, &t(i)).unwrap() {
                sealed_tuples += p.tuple_count();
            }
        }
        let flushed: usize = b.flush().iter().map(|(_, p)| p.tuple_count()).sum();
        assert_eq!(sealed_tuples + flushed, 1000);
    }

    #[test]
    fn oversized_tuple_propagates_error() {
        let mut b = Blocker::new(1, 16);
        let big = vec![Value::Str("x".repeat(64).into())];
        assert!(b.add(0, &big).is_err());
    }
}
