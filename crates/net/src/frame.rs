//! The length-prefixed wire format of the TCP transport.
//!
//! Every frame on a socket is `u32-LE length` + `body`; the body is a
//! tag byte followed by the variant's fields (all integers little
//! endian, floats as IEEE-754 bits). Decoding is *total*: any input —
//! truncated, corrupted, hostile — produces a typed [`FrameError`],
//! never a panic, and no allocation ever exceeds the declared length,
//! which itself is capped at [`MAX_FRAME_BYTES`] **before** allocating.
//! A peer therefore cannot OOM a node by declaring a 4 GB frame.
//!
//! [`WireFrame::Msg`] carries the fabric's [`Message`] verbatim
//! (including its virtual-time timestamp and per-link sequence number),
//! so the reliability layer above the transport behaves identically on
//! TCP and in-process backends. `Hello` / `Heartbeat` / `Bye` exist only
//! below the [`crate::Transport`] seam: handshake, failure detection,
//! and graceful close never enter the sequence space.

use crate::error::{FrameError, NetError};
use crate::message::{Control, DataKind, Message, Payload};
use adaptagg_storage::Page;
use std::io::{Read, Write};

/// Hard cap on a frame body. Message pages are ≤ 4 KB, so 1 MiB leaves
/// two orders of magnitude of headroom while bounding what a corrupt
/// length header can make a receiver allocate.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Everything that travels on a TCP link.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame {
    /// Connection handshake: the dialing node identifies itself and the
    /// cluster size it believes in (mismatch → connection rejected).
    Hello {
        /// The dialing node's id.
        node: u32,
        /// Cluster size the dialer was configured with.
        nodes: u32,
    },
    /// Liveness beacon, sent on an interval by each side of a link.
    Heartbeat {
        /// The beaconing node's id.
        node: u32,
    },
    /// Graceful close: the sender is done; its silence is not a failure.
    Bye {
        /// The departing node's id.
        node: u32,
    },
    /// A fabric message (data page or control), timestamps and all.
    Msg(Message),
}

const TAG_HELLO: u8 = 1;
const TAG_HEARTBEAT: u8 = 2;
const TAG_BYE: u8 = 3;
const TAG_MSG: u8 = 4;

/// A bounds-checked little-endian reader over a frame body. Public so
/// higher layers (the coordinator/worker job protocol) can reuse the
/// same panic-free decoding discipline for their payloads.
#[derive(Debug)]
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        FrameReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Next IEEE-754 `f64` (from its bit pattern).
    pub fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Next length-prefixed byte string. The declared length is checked
    /// against the remaining input before anything is copied.
    pub fn bytes(&mut self) -> Result<&'a [u8], FrameError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Next length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, FrameError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| FrameError::Corrupt("utf8"))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Require the input to be fully consumed (trailing garbage is a
    /// corruption, not padding).
    pub fn finish(&self) -> Result<(), FrameError> {
        if self.remaining() != 0 {
            return Err(FrameError::Corrupt("trailing bytes"));
        }
        Ok(())
    }
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Encode a frame body (without the outer length prefix).
pub fn encode_frame(frame: &WireFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match frame {
        WireFrame::Hello { node, nodes } => {
            out.push(TAG_HELLO);
            out.extend_from_slice(&node.to_le_bytes());
            out.extend_from_slice(&nodes.to_le_bytes());
        }
        WireFrame::Heartbeat { node } => {
            out.push(TAG_HEARTBEAT);
            out.extend_from_slice(&node.to_le_bytes());
        }
        WireFrame::Bye { node } => {
            out.push(TAG_BYE);
            out.extend_from_slice(&node.to_le_bytes());
        }
        WireFrame::Msg(msg) => {
            out.push(TAG_MSG);
            encode_message(msg, &mut out);
        }
    }
    out
}

fn encode_message(msg: &Message, out: &mut Vec<u8>) {
    out.extend_from_slice(&(msg.from as u32).to_le_bytes());
    out.extend_from_slice(&msg.seq.to_le_bytes());
    out.extend_from_slice(&msg.sent_at_ms.to_bits().to_le_bytes());
    match &msg.payload {
        Payload::Data { kind, page } => {
            out.push(0);
            out.push(match kind {
                DataKind::Raw => 0,
                DataKind::Partial => 1,
            });
            out.extend_from_slice(&(page.capacity() as u32).to_le_bytes());
            out.extend_from_slice(&(page.tuple_count() as u32).to_le_bytes());
            out.extend_from_slice(&(page.bytes_used() as u32).to_le_bytes());
            page.encode_into(out);
        }
        Payload::Control(c) => {
            out.push(1);
            match c {
                Control::EndOfStream => out.push(0),
                Control::EndOfPhase { groups_seen } => {
                    out.push(1);
                    out.extend_from_slice(&groups_seen.to_le_bytes());
                }
                Control::SamplingDecision {
                    use_repartitioning,
                    groups_in_sample,
                } => {
                    out.push(2);
                    out.push(u8::from(*use_repartitioning));
                    out.extend_from_slice(&groups_in_sample.to_le_bytes());
                }
                Control::Abort { origin, reason } => {
                    out.push(3);
                    out.extend_from_slice(&(*origin as u32).to_le_bytes());
                    put_bytes(out, reason.as_bytes());
                }
                Control::Job(payload) => {
                    out.push(4);
                    put_bytes(out, payload);
                }
            }
        }
    }
}

/// Decode a frame body. Total: every failure is a typed [`FrameError`].
pub fn decode_frame(buf: &[u8]) -> Result<WireFrame, FrameError> {
    let mut r = FrameReader::new(buf);
    let frame = match r.u8()? {
        TAG_HELLO => WireFrame::Hello {
            node: r.u32()?,
            nodes: r.u32()?,
        },
        TAG_HEARTBEAT => WireFrame::Heartbeat { node: r.u32()? },
        TAG_BYE => WireFrame::Bye { node: r.u32()? },
        TAG_MSG => WireFrame::Msg(decode_message(&mut r)?),
        _ => return Err(FrameError::Corrupt("frame tag")),
    };
    r.finish()?;
    Ok(frame)
}

fn decode_message(r: &mut FrameReader<'_>) -> Result<Message, FrameError> {
    let from = r.u32()? as usize;
    let seq = r.u64()?;
    let sent_at_ms = r.f64()?;
    if !sent_at_ms.is_finite() {
        return Err(FrameError::Corrupt("timestamp"));
    }
    let payload = match r.u8()? {
        0 => {
            let kind = match r.u8()? {
                0 => DataKind::Raw,
                1 => DataKind::Partial,
                _ => return Err(FrameError::Corrupt("data kind")),
            };
            let capacity = r.u32()? as usize;
            if capacity > MAX_FRAME_BYTES as usize {
                return Err(FrameError::Corrupt("page capacity"));
            }
            let tuples = r.u32()?;
            let data = r.bytes()?.to_vec();
            // `from_raw` re-validates that the bytes decode to exactly
            // `tuples` tuples spanning the whole buffer — a flipped bit
            // in the tuple encoding surfaces here, not in an operator.
            let page = Page::from_raw(capacity, data, tuples)
                .map_err(|_| FrameError::Corrupt("page tuples"))?;
            Payload::Data { kind, page }
        }
        1 => Payload::Control(match r.u8()? {
            0 => Control::EndOfStream,
            1 => Control::EndOfPhase {
                groups_seen: r.u64()?,
            },
            2 => Control::SamplingDecision {
                use_repartitioning: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::Corrupt("bool")),
                },
                groups_in_sample: r.u64()?,
            },
            3 => Control::Abort {
                origin: r.u32()? as usize,
                reason: r.str()?.to_string(),
            },
            4 => Control::Job(r.bytes()?.to_vec()),
            _ => return Err(FrameError::Corrupt("control tag")),
        }),
        _ => return Err(FrameError::Corrupt("payload tag")),
    };
    Ok(Message {
        from,
        seq,
        sent_at_ms,
        payload,
    })
}

/// Write one length-prefixed frame to a stream.
pub fn write_frame<W: Write>(w: &mut W, frame: &WireFrame) -> Result<(), NetError> {
    let body = encode_frame(frame);
    debug_assert!(body.len() <= MAX_FRAME_BYTES as usize);
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&body);
    // One write for prefix + body: a frame is never half-visible to the
    // kernel on this side (the reader still handles torn frames, e.g.
    // from a peer killed mid-write).
    w.write_all(&buf).map_err(|e| NetError::Io {
        op: "write frame",
        kind: e.kind(),
    })
}

/// Read one length-prefixed frame. `Ok(None)` is a clean end-of-stream
/// (EOF exactly at a frame boundary); EOF inside a frame is
/// [`FrameError::Truncated`]; a declared length above
/// [`MAX_FRAME_BYTES`] is rejected before any allocation.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<WireFrame>, NetError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(FrameError::Truncated.into());
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(NetError::Io {
                    op: "read frame length",
                    kind: e.kind(),
                })
            }
        }
    }
    let declared = u32::from_le_bytes(len_buf);
    if declared > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized {
            declared,
            max: MAX_FRAME_BYTES,
        }
        .into());
    }
    let mut body = vec![0u8; declared as usize];
    r.read_exact(&mut body).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => FrameError::Truncated.into(),
        kind => NetError::Io {
            op: "read frame body",
            kind,
        },
    })?;
    Ok(Some(decode_frame(&body)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::Value;

    fn sample_page() -> Page {
        let mut p = Page::new(2048);
        for i in 0..5 {
            assert!(p.try_push(&[Value::Int(i), Value::Str("abc".into())]).unwrap());
        }
        p
    }

    fn sample_frames() -> Vec<WireFrame> {
        vec![
            WireFrame::Hello { node: 2, nodes: 4 },
            WireFrame::Heartbeat { node: 1 },
            WireFrame::Bye { node: 3 },
            WireFrame::Msg(Message {
                from: 1,
                seq: 42,
                sent_at_ms: 13.25,
                payload: Payload::Data {
                    kind: DataKind::Partial,
                    page: sample_page(),
                },
            }),
            WireFrame::Msg(Message {
                from: 0,
                seq: 7,
                sent_at_ms: 0.0,
                payload: Payload::Control(Control::Abort {
                    origin: 2,
                    reason: "unit test".into(),
                }),
            }),
            WireFrame::Msg(Message {
                from: 3,
                seq: 0,
                sent_at_ms: 1.5,
                payload: Payload::Control(Control::Job(vec![9, 8, 7])),
            }),
            WireFrame::Msg(Message {
                from: 2,
                seq: 9,
                sent_at_ms: 2.0,
                payload: Payload::Control(Control::SamplingDecision {
                    use_repartitioning: true,
                    groups_in_sample: 11,
                }),
            }),
        ]
    }

    #[test]
    fn frames_round_trip() {
        for frame in sample_frames() {
            let body = encode_frame(&frame);
            assert_eq!(decode_frame(&body).unwrap(), frame);
        }
    }

    #[test]
    fn stream_round_trips_multiple_frames() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = &wire[..];
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at boundary");
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        for frame in sample_frames() {
            let body = encode_frame(&frame);
            for cut in 0..body.len() {
                let r = decode_frame(&body[..cut]);
                assert!(r.is_err(), "cut at {cut} must fail");
            }
        }
    }

    #[test]
    fn oversized_declaration_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut r = &wire[..];
        assert_eq!(
            read_frame(&mut r),
            Err(NetError::Frame(FrameError::Oversized {
                declared: u32::MAX,
                max: MAX_FRAME_BYTES,
            }))
        );
    }

    #[test]
    fn torn_stream_is_truncated_not_a_hang_or_panic() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &WireFrame::Heartbeat { node: 0 }).unwrap();
        // Kill the stream mid-frame (peer SIGKILLed mid-write).
        let cut = wire.len() - 2;
        let mut r = &wire[..cut];
        assert_eq!(
            read_frame(&mut r),
            Err(NetError::Frame(FrameError::Truncated))
        );
        // And mid-length-prefix too.
        let mut r = &wire[..2];
        assert_eq!(
            read_frame(&mut r),
            Err(NetError::Frame(FrameError::Truncated))
        );
    }

    #[test]
    fn corrupt_page_bytes_are_rejected_by_revalidation() {
        let frame = WireFrame::Msg(Message {
            from: 0,
            seq: 0,
            sent_at_ms: 1.0,
            payload: Payload::Data {
                kind: DataKind::Raw,
                page: sample_page(),
            },
        });
        let mut body = encode_frame(&frame);
        // Flip a byte inside the tuple encoding (near the end).
        let idx = body.len() - 3;
        body[idx] ^= 0xff;
        assert!(decode_frame(&body).is_err(), "bit flip must not decode");
    }

    #[test]
    fn non_finite_timestamp_is_corrupt() {
        let frame = WireFrame::Msg(Message {
            from: 0,
            seq: 0,
            sent_at_ms: f64::NAN,
            payload: Payload::Control(Control::EndOfStream),
        });
        let body = encode_frame(&frame);
        assert_eq!(
            decode_frame(&body),
            Err(FrameError::Corrupt("timestamp"))
        );
    }

    #[test]
    fn unknown_tags_are_corrupt() {
        assert_eq!(decode_frame(&[99]), Err(FrameError::Corrupt("frame tag")));
        assert_eq!(decode_frame(&[]), Err(FrameError::Truncated));
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut body = encode_frame(&WireFrame::Heartbeat { node: 0 });
        body.push(0);
        assert_eq!(
            decode_frame(&body),
            Err(FrameError::Corrupt("trailing bytes"))
        );
    }
}
