//! Bandwidth models.
//!
//! The paper models two interconnects (§2):
//!
//! * a **high-speed, high-bandwidth** network "modeled only by the latency
//!   to send a message, i.e. it has unlimited bandwidth" — transfers from
//!   different nodes never interact;
//! * a **limited-bandwidth** network "modeled as a sequential resource
//!   where sending a fixed amount of data will take a fixed amount of time
//!   independent of the number of processors involved" — one shared bus.
//!
//! [`Network::transfer`] maps a (sender-time, pages) pair to the transfer's
//! completion time under the chosen model.
//!
//! ## The shared bus is an interval ledger
//!
//! Threads run in real time but carry *virtual* clocks, so bus
//! reservations arrive in arbitrary virtual-time order. A naive
//! `bus_free` scalar would let a thread that raced ahead in real time
//! push the bus far into the virtual future, charging phantom waits to
//! nodes whose virtual clocks are earlier (this visibly distorted the
//! Adaptive Two Phase measurements, which send *during* the scan). The
//! ledger instead books each transfer into the **first free virtual
//! interval at or after the sender's virtual time** — the result is
//! (nearly) independent of thread interleaving, total occupancy is exact
//! (`pages × ms/page`), and contention only arises between transfers
//! whose virtual times genuinely overlap, which is what the paper's
//! "sequential resource" means.

use adaptagg_model::NetworkKind;
use parking_lot::Mutex;
use std::sync::Arc;

/// Busy intervals, sorted and disjoint.
#[derive(Debug, Default)]
struct BusLedger {
    intervals: Vec<(f64, f64)>,
    total_busy_ms: f64,
}

impl BusLedger {
    /// Book `span` ms starting no earlier than `now`, in the first gap
    /// that fits. Returns the booked start time.
    fn book(&mut self, now: f64, span: f64) -> f64 {
        let mut candidate = now;
        let mut insert_at = self.intervals.len();
        for (i, &(s, e)) in self.intervals.iter().enumerate() {
            if e <= candidate {
                continue; // interval entirely in the past of the candidate
            }
            if s >= candidate + span {
                insert_at = i; // gap before this interval fits
                break;
            }
            candidate = candidate.max(e);
            insert_at = i + 1;
        }
        self.intervals.insert(insert_at, (candidate, candidate + span));
        self.coalesce(insert_at);
        self.total_busy_ms += span;
        candidate
    }

    /// Merge the interval at `idx` with touching neighbours to keep the
    /// ledger small.
    fn coalesce(&mut self, idx: usize) {
        // Merge with successor(s).
        while idx + 1 < self.intervals.len() && self.intervals[idx + 1].0 <= self.intervals[idx].1
        {
            let (_, e2) = self.intervals.remove(idx + 1);
            self.intervals[idx].1 = self.intervals[idx].1.max(e2);
        }
        // Merge with predecessor.
        if idx > 0 && self.intervals[idx].0 <= self.intervals[idx - 1].1 {
            let (_, e) = self.intervals.remove(idx);
            self.intervals[idx - 1].1 = self.intervals[idx - 1].1.max(e);
        }
    }
}

/// A cluster interconnect shared by all node endpoints.
#[derive(Debug, Clone)]
pub struct Network {
    kind: NetworkKind,
    bus: Arc<Mutex<BusLedger>>,
}

impl Network {
    /// A network of the given kind.
    pub fn new(kind: NetworkKind) -> Self {
        Network {
            kind,
            bus: Arc::new(Mutex::new(BusLedger::default())),
        }
    }

    /// The kind being modelled.
    pub fn kind(&self) -> NetworkKind {
        self.kind
    }

    /// Complete a transfer of `pages` message pages starting no earlier
    /// than `now_ms` on the sender. Returns the completion time.
    pub fn transfer(&self, now_ms: f64, pages: u64) -> f64 {
        if pages == 0 {
            return now_ms;
        }
        let per_page = self.kind.ms_per_page();
        let span = per_page * pages as f64;
        match self.kind {
            NetworkKind::HighSpeed { .. } => now_ms + span,
            NetworkKind::SharedBus { .. } => {
                let mut bus = self.bus.lock();
                bus.book(now_ms, span) + span
            }
        }
    }

    /// Total time the shared medium has been occupied (0 for the
    /// high-speed model). Useful for utilization reports.
    pub fn total_busy_ms(&self) -> f64 {
        self.bus.lock().total_busy_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_speed_transfers_do_not_contend() {
        let net = Network::new(NetworkKind::HighSpeed { latency_ms: 0.5 });
        assert_eq!(net.transfer(10.0, 2), 11.0);
        assert_eq!(net.transfer(10.0, 2), 11.0);
        assert_eq!(net.total_busy_ms(), 0.0);
    }

    #[test]
    fn shared_bus_serializes_overlapping_transfers() {
        let net = Network::new(NetworkKind::SharedBus { ms_per_page: 2.0 });
        // First sender takes 10→12; second, also at 10, queues to 12→14.
        assert_eq!(net.transfer(10.0, 1), 12.0);
        assert_eq!(net.transfer(10.0, 1), 14.0);
        assert_eq!(net.total_busy_ms(), 4.0);
    }

    #[test]
    fn non_overlapping_transfers_do_not_queue() {
        let net = Network::new(NetworkKind::SharedBus { ms_per_page: 2.0 });
        assert_eq!(net.transfer(10.0, 1), 12.0);
        // The bus is idle again at virtual 20: no queueing.
        assert_eq!(net.transfer(20.0, 3), 26.0);
        assert_eq!(net.total_busy_ms(), 8.0);
    }

    #[test]
    fn out_of_order_reservations_fill_earlier_gaps() {
        // The property that motivated the ledger: a thread that reserves
        // "late" in real time but "early" in virtual time must not queue
        // behind virtual-future traffic.
        let net = Network::new(NetworkKind::SharedBus { ms_per_page: 2.0 });
        assert_eq!(net.transfer(100.0, 1), 102.0); // raced-ahead thread
        assert_eq!(net.transfer(0.0, 1), 2.0, "virtual-past send books the idle bus");
        // And a send overlapping the [100,102] booking queues after it.
        assert_eq!(net.transfer(101.0, 1), 104.0);
    }

    #[test]
    fn gap_exactly_fitting_is_used() {
        let net = Network::new(NetworkKind::SharedBus { ms_per_page: 1.0 });
        assert_eq!(net.transfer(0.0, 2), 2.0); // [0,2]
        assert_eq!(net.transfer(4.0, 2), 6.0); // [4,6]
        // A 2-page transfer at 2 fits exactly in [2,4].
        assert_eq!(net.transfer(2.0, 2), 4.0);
        // Next overlapping send queues to the end.
        assert_eq!(net.transfer(0.0, 1), 7.0);
    }

    #[test]
    fn zero_pages_is_free() {
        let net = Network::new(NetworkKind::SharedBus { ms_per_page: 2.0 });
        assert_eq!(net.transfer(5.0, 0), 5.0);
        assert_eq!(net.total_busy_ms(), 0.0);
    }

    #[test]
    fn clones_share_the_bus() {
        let a = Network::new(NetworkKind::SharedBus { ms_per_page: 1.0 });
        let b = a.clone();
        a.transfer(0.0, 4);
        assert_eq!(b.transfer(0.0, 1), 5.0);
    }

    #[test]
    fn bus_total_occupancy_is_conserved_under_threads() {
        let net = Network::new(NetworkKind::SharedBus { ms_per_page: 1.0 });
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let n = net.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        n.transfer(0.0, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(net.total_busy_ms(), 100.0);
        // All 100 unit transfers started at 0: they occupy exactly
        // [0, 100] regardless of interleaving.
        assert_eq!(net.transfer(0.0, 1), 101.0);
    }

    #[test]
    fn ledger_stays_compact_under_contiguous_load() {
        let net = Network::new(NetworkKind::SharedBus { ms_per_page: 1.0 });
        for _ in 0..1000 {
            net.transfer(0.0, 1);
        }
        assert_eq!(net.bus.lock().intervals.len(), 1, "coalescing failed");
    }
}
