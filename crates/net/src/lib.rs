//! # adaptagg-net
//!
//! The interconnect of the simulated shared-nothing cluster.
//!
//! * [`Message`] — what travels between nodes: 2 KB blocks of tuples
//!   ([`DataKind::Raw`] projected base tuples or [`DataKind::Partial`]
//!   partially-aggregated rows — the two kinds §3.2's merge phase must
//!   accept) plus the control messages the algorithms use (end-of-stream
//!   markers, the Adaptive Repartitioning `EndOfPhase` broadcast, the
//!   Sampling coordinator's decision).
//! * [`Network`] — the bandwidth model: [`NetworkKind::HighSpeed`] charges
//!   only per-page latency (IBM SP-2-like), [`NetworkKind::SharedBus`]
//!   serializes all transfers on one shared medium (10 Mbit Ethernet-like),
//!   which is exactly the paper's "sequential resource" model.
//! * [`Fabric`] / [`Endpoint`] — N×N crossbeam channels; each node thread
//!   owns one endpoint. Every message carries the sender's virtual-time
//!   send-completion timestamp; receivers advance their clocks to at least
//!   that value (Lamport), so waiting-for-data shows up in elapsed virtual
//!   time just as it did on the paper's cluster.
//! * [`Blocker`] — per-destination tuple blocking into message pages
//!   (the implementation "blocked the messages into 2 KB pages", §5).
//!
//! Time vs cost: this crate computes *transfer times* (which may involve
//! waiting on the shared bus). Per-page protocol CPU (`m_p`) is a
//! [`adaptagg_model::CostEvent::MsgProtocol`] event charged by the
//! execution layer on both sides, following the paper's
//! `m_p + m_l + m_p` accounting.

pub mod blocker;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod frame;
pub mod message;
pub mod network;
pub mod stats;
pub mod tcp;
pub mod transport;

pub use blocker::Blocker;
pub use error::{FrameError, NetError};
pub use fabric::{Endpoint, Fabric, LinkRetryPolicy};
pub use fault::{FaultPlan, LinkFaults, NodeFaults, SplitMix64};
pub use frame::{WireFrame, MAX_FRAME_BYTES};
pub use message::{Control, DataKind, Message, Payload};
pub use network::Network;
pub use stats::{LinkStats, NetStats};
pub use tcp::{loopback_endpoints, TcpConfig, TcpTransport};
pub use transport::{ChannelTransport, SendFailure, Transport, TransportKind};

pub use adaptagg_model::NetworkKind;
/// Re-export: message pages are storage pages with a 2 KB capacity.
pub use adaptagg_storage::Page;
