//! A real TCP transport: the same [`Transport`] seam as the in-process
//! channel mesh, backed by length-prefixed frames on loopback or LAN
//! sockets.
//!
//! Topology is a full mesh of *directed* connections: node `i` dials
//! every peer `j`, identifies itself with [`WireFrame::Hello`], and uses
//! that socket for everything `i → j`; `j`'s accept loop hands the
//! socket to a reader thread. Failure detection and recovery live here,
//! below the deterministic reliability layer in [`crate::Endpoint`]:
//!
//! * **Heartbeats** — every [`TcpConfig::heartbeat_interval`] each node
//!   beacons [`WireFrame::Heartbeat`] on its outbound links; a peer not
//!   heard from (frames of any kind count) for
//!   [`TcpConfig::heartbeat_timeout`] is declared dead.
//! * **Abrupt death** — EOF or an I/O / frame-decode error on an
//!   inbound link *without* a preceding [`WireFrame::Bye`] declares the
//!   peer dead immediately; a `Bye` makes the same silence graceful.
//! * **Reconnection** — a failed send redials with jittered exponential
//!   backoff, replays the un-acknowledged frame, and only after
//!   [`TcpConfig::connect_attempts`] failures escalates to
//!   [`NetError::PeerDown`] (which [`crate::LinkRetryPolicy`] and the
//!   recovery loop above then handle).
//!
//! A dead peer surfaces **exactly once** per transport as
//! `Err(NetError::PeerDown { peer })` from a receive call; when every
//! peer has either said `Bye` or died, receives return
//! [`NetError::Disconnected`]. Frame decoding is total (see
//! [`crate::frame`]): a corrupt or hostile peer can kill its own link,
//! never this node.

use crate::error::NetError;
use crate::fabric::Endpoint;
use crate::fault::{FaultPlan, SplitMix64};
use crate::frame::{read_frame, write_frame, WireFrame};
use crate::message::Message;
use crate::network::Network;
use crate::transport::{SendFailure, Transport};
use adaptagg_model::NetworkKind;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Real-time tuning knobs of the TCP transport. All durations are wall
/// clock — failure detection is inherently a real-time concern, exactly
/// like the execution layer's watchdog.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// How often each node beacons `Heartbeat` on its outbound links.
    pub heartbeat_interval: Duration,
    /// Silence longer than this (no frame of any kind) declares a peer
    /// dead. Should be several multiples of `heartbeat_interval`.
    pub heartbeat_timeout: Duration,
    /// Budget for the initial mesh establishment: how long to wait for
    /// every peer's inbound `Hello` before failing with
    /// [`NetError::Handshake`].
    pub handshake_timeout: Duration,
    /// Dial attempts (initial connect and send-path reconnect) before a
    /// peer is declared unreachable.
    pub connect_attempts: u32,
    /// Base delay before the first redial; doubles (by
    /// `backoff_multiplier`) per attempt.
    pub connect_backoff: Duration,
    /// Growth factor of the redial backoff.
    pub backoff_multiplier: f64,
    /// Uniform jitter applied to every backoff sleep: a wait `w`
    /// becomes `w · (1 + jitter_frac · u)`, `u ∈ [−1, 1)` — so workers
    /// restarting together don't redial in lockstep.
    pub jitter_frac: f64,
    /// Seed of the deterministic jitter stream (mixed with the node id,
    /// so each node jitters differently under one seed).
    pub seed: u64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            heartbeat_interval: Duration::from_millis(50),
            heartbeat_timeout: Duration::from_secs(2),
            handshake_timeout: Duration::from_secs(10),
            connect_attempts: 10,
            connect_backoff: Duration::from_millis(20),
            backoff_multiplier: 2.0,
            jitter_frac: 0.25,
            seed: 0,
        }
    }
}

impl TcpConfig {
    /// This config with a different jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Aggressive timings for tests: fast heartbeats, short timeouts,
    /// quick redial escalation — failure-detection tests finish in
    /// hundreds of milliseconds instead of seconds.
    pub fn snappy() -> Self {
        TcpConfig {
            heartbeat_interval: Duration::from_millis(10),
            heartbeat_timeout: Duration::from_millis(150),
            handshake_timeout: Duration::from_secs(5),
            connect_attempts: 3,
            connect_backoff: Duration::from_millis(2),
            ..TcpConfig::default()
        }
    }
}

/// What reader / monitor threads report to the owning transport.
#[derive(Debug)]
enum Event {
    /// A fabric message arrived (from the peer's socket, or looped back
    /// from a self-send).
    Msg(Message),
    /// A peer was declared dead (heartbeat timeout, or EOF / error
    /// without `Bye`).
    Dead(usize),
}

/// State shared with the accept, reader, and heartbeat threads.
#[derive(Debug)]
struct Shared {
    node: usize,
    nodes: usize,
    /// Origin of the `last_heard` millisecond clock.
    epoch: Instant,
    shutdown: AtomicBool,
    /// Per peer: last time any frame arrived, in ms since `epoch`.
    last_heard: Vec<AtomicU64>,
    /// Per peer: said `Bye` (graceful close — silence is not failure).
    bye: Vec<AtomicBool>,
    /// Per peer: already declared dead by the heartbeat monitor (so it
    /// emits one event, not one per tick).
    timed_out: Vec<AtomicBool>,
    /// Per peer: inbound connection generation. A reader only reports
    /// death if its generation is still current — a peer that
    /// *reconnected* (new generation) silences its old reader's EOF.
    conn_gen: Vec<AtomicU64>,
    /// Accepted (inbound) streams, kept so shutdown can wake blocked
    /// readers.
    inbound: Vec<Mutex<Option<TcpStream>>>,
    /// Dialed (outbound) streams: the send path and heartbeat beacon.
    inbound_seen: Vec<AtomicBool>,
    inbound_count: AtomicUsize,
    outbound: Vec<Mutex<Option<TcpStream>>>,
}

impl Shared {
    fn new(node: usize, nodes: usize) -> Self {
        Shared {
            node,
            nodes,
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            last_heard: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            bye: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
            timed_out: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
            conn_gen: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            inbound: (0..nodes).map(|_| Mutex::new(None)).collect(),
            inbound_seen: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
            inbound_count: AtomicUsize::new(0),
            outbound: (0..nodes).map(|_| Mutex::new(None)).collect(),
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn touch(&self, peer: usize) {
        self.last_heard[peer].store(self.now_ms(), Ordering::SeqCst);
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// One node's attachment to a TCP mesh. Implements [`Transport`]; wrap
/// it in [`Endpoint::over`] to get the full reliability layer (sequence
/// numbers, dedup, fault injection, virtual-time accounting) on real
/// sockets.
#[derive(Debug)]
pub struct TcpTransport {
    shared: Arc<Shared>,
    peer_addrs: Vec<SocketAddr>,
    listen_addr: SocketAddr,
    events_tx: Sender<Event>,
    events_rx: Receiver<Event>,
    /// Per peer: dead as seen by *this* handle (reported from a receive
    /// call, or declared by an exhausted send). Receive-side dedup.
    dead: Vec<bool>,
    rng: SplitMix64,
    cfg: TcpConfig,
    threads: Vec<JoinHandle<()>>,
}

fn io_err(op: &'static str) -> impl Fn(std::io::Error) -> NetError {
    move |e| NetError::Io { op, kind: e.kind() }
}

impl TcpTransport {
    /// Join a mesh: dial every peer (with jittered backoff — they may
    /// not be listening yet), and block until every peer has dialed us
    /// back, up to [`TcpConfig::handshake_timeout`]. `peer_addrs[i]` is
    /// node `i`'s listen address; `peer_addrs[node]` is ignored in
    /// favor of `listener`'s actual address.
    pub fn establish(
        node: usize,
        nodes: usize,
        listener: TcpListener,
        peer_addrs: Vec<SocketAddr>,
        cfg: TcpConfig,
    ) -> Result<TcpTransport, NetError> {
        assert!(node < nodes, "node id {node} out of range for {nodes} nodes");
        let listen_addr = listener.local_addr().map_err(io_err("local_addr"))?;
        let shared = Arc::new(Shared::new(node, nodes));
        let (events_tx, events_rx) = unbounded();
        let mut transport = TcpTransport {
            shared: Arc::clone(&shared),
            peer_addrs,
            listen_addr,
            events_tx: events_tx.clone(),
            events_rx,
            dead: vec![false; nodes],
            rng: SplitMix64::new(
                cfg.seed ^ 0x9e37_79b9_7f4a_7c15 ^ ((node as u64) << 32 | nodes as u64),
            ),
            cfg,
            threads: Vec::new(),
        };
        transport
            .threads
            .push(spawn_accept_thread(listener, Arc::clone(&shared), events_tx.clone()));

        // Dial every peer. On failure the transport drops, tearing the
        // accept thread and any established links down cleanly.
        for peer in 0..nodes {
            if peer != node {
                let stream = transport.dial(peer)?;
                *shared.outbound[peer].lock() = Some(stream);
            }
        }

        // Wait for every peer's inbound Hello.
        let deadline = Instant::now() + transport.cfg.handshake_timeout;
        while shared.inbound_count.load(Ordering::SeqCst) < nodes - 1 {
            if Instant::now() >= deadline {
                return Err(NetError::Handshake {
                    missing: nodes - 1 - shared.inbound_count.load(Ordering::SeqCst),
                });
            }
            thread::sleep(Duration::from_millis(2));
        }
        // Peers are only now obligated to beacon; starting the monitor
        // earlier would declare the slow-to-dial dead before they spoke.
        for peer in 0..nodes {
            shared.touch(peer);
        }
        transport.threads.push(spawn_heartbeat_thread(
            Arc::clone(&shared),
            events_tx,
            transport.cfg.clone(),
        ));
        Ok(transport)
    }

    /// The address this transport accepts connections on.
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Connect to `peer` and introduce ourselves, retrying with
    /// jittered exponential backoff.
    fn dial(&mut self, peer: usize) -> Result<TcpStream, NetError> {
        let mut backoff_ms = self.cfg.connect_backoff.as_secs_f64() * 1e3;
        let mut last = NetError::PeerDown { peer };
        for attempt in 0..self.cfg.connect_attempts.max(1) {
            if attempt > 0 {
                let jitter = 1.0 + self.cfg.jitter_frac * (2.0 * self.rng.next_f64() - 1.0);
                thread::sleep(Duration::from_secs_f64(
                    (backoff_ms * jitter.max(0.0)) / 1e3,
                ));
                backoff_ms *= self.cfg.backoff_multiplier;
            }
            match TcpStream::connect(self.peer_addrs[peer]) {
                Ok(mut stream) => {
                    let _ = stream.set_nodelay(true);
                    match write_frame(
                        &mut stream,
                        &WireFrame::Hello {
                            node: self.shared.node as u32,
                            nodes: self.shared.nodes as u32,
                        },
                    ) {
                        Ok(()) => return Ok(stream),
                        Err(e) => last = e,
                    }
                }
                Err(e) => last = io_err("connect")(e),
            }
        }
        Err(last)
    }

    /// Whether every peer has either said `Bye` or been declared dead —
    /// nothing can ever arrive again.
    fn all_peers_gone(&self) -> bool {
        (0..self.shared.nodes).all(|p| {
            p == self.shared.node || self.dead[p] || self.bye_or_timed_out_quietly(p)
        })
    }

    fn bye_or_timed_out_quietly(&self, p: usize) -> bool {
        self.shared.bye[p].load(Ordering::SeqCst)
    }

    /// Handle one event; `Ok(Some)` is a message, `Ok(None)` means
    /// "nothing to surface, keep pumping" (a death we already reported).
    fn absorb(&mut self, ev: Event) -> Result<Option<Message>, NetError> {
        match ev {
            Event::Msg(m) => Ok(Some(m)),
            Event::Dead(p) => {
                if self.dead[p] {
                    Ok(None)
                } else {
                    self.dead[p] = true;
                    Err(NetError::PeerDown { peer: p })
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn node(&self) -> usize {
        self.shared.node
    }

    fn nodes(&self) -> usize {
        self.shared.nodes
    }

    fn send(&mut self, to: usize, msg: Message) -> Result<(), SendFailure> {
        if to == self.shared.node {
            // Self-send: loop straight back through the event queue.
            return match self.events_tx.send(Event::Msg(msg)) {
                Ok(()) => Ok(()),
                Err(crossbeam::channel::SendError(Event::Msg(msg))) => Err(SendFailure {
                    msg: Box::new(msg),
                    err: NetError::Disconnected,
                }),
                Err(_) => unreachable!("self-send returns the message we put in"),
            };
        }
        if to >= self.shared.nodes || self.dead[to] || self.shared.bye[to].load(Ordering::SeqCst)
        {
            return Err(SendFailure {
                msg: Box::new(msg),
                err: NetError::PeerDown { peer: to },
            });
        }
        let frame = WireFrame::Msg(msg);
        {
            let mut guard = self.shared.outbound[to].lock();
            if let Some(stream) = guard.as_mut() {
                if write_frame(stream, &frame).is_ok() {
                    return Ok(());
                }
                // Broken pipe: drop the stream and fall through to the
                // reconnect path.
                *guard = None;
            }
        }
        if let Ok(mut stream) = self.dial(to) {
            // Replay the frame the broken connection may have lost.
            if write_frame(&mut stream, &frame).is_ok() {
                *self.shared.outbound[to].lock() = Some(stream);
                return Ok(());
            }
        }
        // Redial budget exhausted: the peer is unreachable. Declare it
        // dead for this handle and hand the message back for the caller
        // to retry or escalate.
        self.dead[to] = true;
        let WireFrame::Msg(msg) = frame else {
            unreachable!("frame was built from msg above")
        };
        Err(SendFailure {
            msg: Box::new(msg),
            err: NetError::PeerDown { peer: to },
        })
    }

    fn try_recv(&mut self) -> Result<Option<Message>, NetError> {
        loop {
            match self.events_rx.try_recv() {
                Ok(ev) => match self.absorb(ev)? {
                    Some(m) => return Ok(Some(m)),
                    None => continue,
                },
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => return Err(NetError::Disconnected),
            }
        }
    }

    fn recv(&mut self) -> Result<Message, NetError> {
        loop {
            match self.events_rx.recv_timeout(self.cfg.heartbeat_interval) {
                Ok(ev) => {
                    if let Some(m) = self.absorb(ev)? {
                        return Ok(m);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.all_peers_gone() {
                        return Err(NetError::Disconnected);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(NetError::Disconnected),
            }
        }
    }

    fn recv_deadline(&mut self, timeout: Duration) -> Result<Message, NetError> {
        let start = Instant::now();
        loop {
            let remaining = timeout.saturating_sub(start.elapsed());
            if remaining.is_zero() {
                return Err(NetError::Deadline {
                    waited_ms: timeout.as_millis() as u64,
                });
            }
            let step = remaining.min(self.cfg.heartbeat_interval);
            match self.events_rx.recv_timeout(step) {
                Ok(ev) => {
                    if let Some(m) = self.absorb(ev)? {
                        return Ok(m);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.all_peers_gone() {
                        return Err(NetError::Disconnected);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(NetError::Disconnected),
            }
        }
    }

    fn peer_gone(&self, peer: usize) -> bool {
        peer != self.shared.node
            && peer < self.shared.nodes
            && (self.dead[peer] || self.bye_or_timed_out_quietly(peer))
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Graceful goodbye on every outbound link, then close them: our
        // silence from here on is not a failure.
        for peer in 0..self.shared.nodes {
            if peer == self.shared.node {
                continue;
            }
            let mut guard = self.shared.outbound[peer].lock();
            if let Some(stream) = guard.as_mut() {
                let _ = write_frame(
                    stream,
                    &WireFrame::Bye {
                        node: self.shared.node as u32,
                    },
                );
                let _ = stream.shutdown(Shutdown::Both);
            }
            *guard = None;
        }
        // Wake blocked readers (they see shutdown and exit silently) and
        // the accept loop (a throwaway connection to ourselves).
        for slot in &self.shared.inbound {
            if let Some(stream) = slot.lock().as_ref() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        let _ = TcpStream::connect(self.listen_addr);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn spawn_accept_thread(
    listener: TcpListener,
    shared: Arc<Shared>,
    events_tx: Sender<Event>,
) -> JoinHandle<()> {
    thread::Builder::new()
        .name(format!("tcp-accept-{}", shared.node))
        .spawn(move || loop {
            let (mut stream, _) = match listener.accept() {
                Ok(conn) => conn,
                Err(_) => {
                    if shared.is_shutdown() {
                        return;
                    }
                    continue;
                }
            };
            if shared.is_shutdown() {
                return;
            }
            let _ = stream.set_nodelay(true);
            // The handshake read is bounded so one stalled dialer can't
            // freeze the accept loop.
            let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
            let hello = read_frame(&mut stream);
            let _ = stream.set_read_timeout(None);
            let peer = match hello {
                Ok(Some(WireFrame::Hello { node, nodes }))
                    if nodes as usize == shared.nodes
                        && (node as usize) < shared.nodes
                        && node as usize != shared.node =>
                {
                    node as usize
                }
                // Anything else — wrong cluster size, bogus id, garbage,
                // or the shutdown wake-up connection — is not a peer.
                _ => continue,
            };
            shared.touch(peer);
            // A fresh connection from a known peer supersedes the old
            // one: bump the generation so the stale reader's EOF is not
            // mistaken for a death.
            let generation = shared.conn_gen[peer].fetch_add(1, Ordering::SeqCst) + 1;
            *shared.inbound[peer].lock() = stream.try_clone().ok();
            if !shared.inbound_seen[peer].swap(true, Ordering::SeqCst) {
                shared.inbound_count.fetch_add(1, Ordering::SeqCst);
            }
            let reader_shared = Arc::clone(&shared);
            let reader_tx = events_tx.clone();
            let _ = thread::Builder::new()
                .name(format!("tcp-read-{}-from-{peer}", shared.node))
                .spawn(move || reader_loop(peer, generation, stream, reader_shared, reader_tx));
        })
        .expect("spawn tcp accept thread")
}

/// Pump frames from one inbound connection until it closes. Detached:
/// exits on EOF, error, `Bye`, or shutdown; never blocks process exit
/// because shutdown closes the socket out from under it.
fn reader_loop(
    peer: usize,
    generation: u64,
    mut stream: TcpStream,
    shared: Arc<Shared>,
    events_tx: Sender<Event>,
) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some(WireFrame::Msg(msg))) => {
                shared.touch(peer);
                // A frame claiming to be from someone else is corrupt or
                // hostile; drop it rather than poison the dedup state.
                if msg.from == peer {
                    let _ = events_tx.send(Event::Msg(msg));
                }
            }
            Ok(Some(WireFrame::Heartbeat { .. })) | Ok(Some(WireFrame::Hello { .. })) => {
                shared.touch(peer);
            }
            Ok(Some(WireFrame::Bye { .. })) => {
                shared.bye[peer].store(true, Ordering::SeqCst);
                return;
            }
            // Clean EOF without Bye, torn frame, corrupt bytes, or an
            // I/O error: the peer is gone (killed, crashed, or speaking
            // garbage). Report it unless this reader was superseded by a
            // reconnect or we are shutting down ourselves.
            Ok(None) | Err(_) => {
                if !shared.is_shutdown()
                    && shared.conn_gen[peer].load(Ordering::SeqCst) == generation
                    && !shared.bye[peer].load(Ordering::SeqCst)
                {
                    let _ = events_tx.send(Event::Dead(peer));
                }
                return;
            }
        }
    }
}

/// Beacon heartbeats on every outbound link and declare peers that have
/// gone silent past the timeout.
fn spawn_heartbeat_thread(
    shared: Arc<Shared>,
    events_tx: Sender<Event>,
    cfg: TcpConfig,
) -> JoinHandle<()> {
    let timeout_ms = cfg.heartbeat_timeout.as_millis() as u64;
    thread::Builder::new()
        .name(format!("tcp-heartbeat-{}", shared.node))
        .spawn(move || loop {
            thread::sleep(cfg.heartbeat_interval);
            if shared.is_shutdown() {
                return;
            }
            let now = shared.now_ms();
            for peer in 0..shared.nodes {
                if peer == shared.node || shared.bye[peer].load(Ordering::SeqCst) {
                    continue;
                }
                {
                    let mut guard = shared.outbound[peer].lock();
                    if let Some(stream) = guard.as_mut() {
                        let beat = WireFrame::Heartbeat {
                            node: shared.node as u32,
                        };
                        if write_frame(stream, &beat).is_err() {
                            // Leave reconnection to the send path.
                            *guard = None;
                        }
                    }
                }
                if !shared.timed_out[peer].load(Ordering::SeqCst)
                    && now.saturating_sub(shared.last_heard[peer].load(Ordering::SeqCst))
                        > timeout_ms
                {
                    shared.timed_out[peer].store(true, Ordering::SeqCst);
                    let _ = events_tx.send(Event::Dead(peer));
                }
            }
        })
        .expect("spawn tcp heartbeat thread")
}

/// Build an `n`-node TCP mesh on `127.0.0.1` (ephemeral ports) and wrap
/// each transport in the full reliability layer. The in-process twin of
/// what the `adaptagg-coordinator` / `adaptagg-worker` binaries do
/// across real processes — and the backend behind
/// `TransportKind::TcpLoopback`.
pub fn loopback_endpoints(
    n: usize,
    network: NetworkKind,
    plan: &FaultPlan,
    cfg: TcpConfig,
) -> Result<Vec<Endpoint>, NetError> {
    let net = Network::new(network);
    let transports = loopback_transports(n, cfg)?;
    Ok(transports
        .into_iter()
        .map(|t| Endpoint::over(Box::new(t), net.clone(), plan))
        .collect())
}

/// Establish an `n`-node loopback mesh of raw transports, concurrently
/// (establishment blocks on mutual Hellos, so the nodes must dial in
/// parallel).
pub fn loopback_transports(n: usize, cfg: TcpConfig) -> Result<Vec<TcpTransport>, NetError> {
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(io_err("bind"))?;
        addrs.push(listener.local_addr().map_err(io_err("local_addr"))?);
        listeners.push(listener);
    }
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(node, listener)| {
            let addrs = addrs.clone();
            let cfg = cfg.clone();
            thread::spawn(move || TcpTransport::establish(node, n, listener, addrs, cfg))
        })
        .collect();
    let mut transports = Vec::with_capacity(n);
    for handle in handles {
        transports.push(handle.join().map_err(|_| NetError::Io {
            op: "establish",
            kind: std::io::ErrorKind::Other,
        })??);
    }
    Ok(transports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Control, Payload};

    fn control_msg(from: usize, seq: u64) -> Message {
        Message {
            from,
            seq,
            sent_at_ms: 1.0,
            payload: Payload::Control(Control::Job(vec![seq as u8])),
        }
    }

    /// Abrupt, Bye-less death: close every socket and stop every thread
    /// without the goodbye — what SIGKILL does to a real process.
    fn sever(t: &TcpTransport) {
        t.shared.shutdown.store(true, Ordering::SeqCst);
        for slot in t.shared.outbound.iter().chain(t.shared.inbound.iter()) {
            if let Some(s) = slot.lock().as_ref() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        let _ = TcpStream::connect(t.listen_addr);
    }

    #[test]
    fn mesh_exchanges_messages_both_ways() {
        let mut ts = loopback_transports(2, TcpConfig::snappy()).unwrap();
        let (mut a, mut b) = (ts.remove(0), ts.remove(0));
        a.send(1, control_msg(0, 7)).unwrap();
        assert_eq!(b.recv().unwrap(), control_msg(0, 7));
        b.send(0, control_msg(1, 9)).unwrap();
        assert_eq!(a.recv().unwrap(), control_msg(1, 9));
    }

    #[test]
    fn self_send_loops_back() {
        let mut ts = loopback_transports(1, TcpConfig::snappy()).unwrap();
        let mut a = ts.remove(0);
        a.send(0, control_msg(0, 3)).unwrap();
        assert_eq!(a.try_recv().unwrap(), Some(control_msg(0, 3)));
        assert_eq!(a.try_recv().unwrap(), None);
    }

    #[test]
    fn graceful_drop_is_not_a_death() {
        let mut ts = loopback_transports(2, TcpConfig::snappy()).unwrap();
        let (mut a, b) = (ts.remove(0), ts.remove(0));
        drop(b); // sends Bye
        assert_eq!(a.recv(), Err(NetError::Disconnected));
    }

    #[test]
    fn severed_peer_is_reported_dead_exactly_once() {
        let mut ts = loopback_transports(2, TcpConfig::snappy()).unwrap();
        let (mut a, b) = (ts.remove(0), ts.remove(0));
        sever(&b);
        assert_eq!(a.recv(), Err(NetError::PeerDown { peer: 1 }));
        // Second receive: the death is not re-reported; with the only
        // peer gone, the transport reports disconnection.
        assert_eq!(a.recv(), Err(NetError::Disconnected));
        drop(b);
    }

    #[test]
    fn send_to_severed_peer_escalates_and_returns_the_message() {
        let mut ts = loopback_transports(2, TcpConfig::snappy()).unwrap();
        let (mut a, b) = (ts.remove(0), ts.remove(0));
        sever(&b);
        drop(b); // release the port so redials actually fail
        let original = control_msg(0, 11);
        // The first send may succeed into the kernel buffer of the
        // now-dead connection; keep sending until the failure surfaces.
        let failure = loop {
            match a.send(1, original.clone()) {
                Ok(()) => thread::sleep(Duration::from_millis(5)),
                Err(f) => break f,
            }
        };
        assert_eq!(failure.err, NetError::PeerDown { peer: 1 });
        assert_eq!(failure.msg, original, "failed send hands the message back");
    }

    #[test]
    fn silent_peer_times_out_via_heartbeats() {
        let mut ts = loopback_transports(2, TcpConfig::snappy()).unwrap();
        let (mut a, b) = (ts.remove(0), ts.remove(0));
        // Mute b: its heartbeat thread stops, but its sockets stay open,
        // so only the timeout (not EOF) can detect it.
        b.shared.shutdown.store(true, Ordering::SeqCst);
        assert_eq!(
            a.recv_deadline(Duration::from_secs(10)),
            Err(NetError::PeerDown { peer: 1 })
        );
        drop(b);
    }

    #[test]
    fn recv_deadline_times_out_against_healthy_but_silent_mesh() {
        let mut ts = loopback_transports(2, TcpConfig::snappy()).unwrap();
        let mut a = ts.remove(0);
        assert_eq!(
            a.recv_deadline(Duration::from_millis(40)),
            Err(NetError::Deadline { waited_ms: 40 })
        );
    }

    #[test]
    fn endpoints_over_tcp_carry_the_reliability_layer() {
        let plan = FaultPlan::none();
        let mut eps =
            loopback_endpoints(
            3,
            NetworkKind::high_speed_default(),
            &plan,
            TcpConfig::snappy(),
        )
        .unwrap();
        let mut c = eps.remove(2);
        let mut b = eps.remove(1);
        let mut a = eps.remove(0);
        a.send_control(2, Control::EndOfStream, 5.0).unwrap();
        b.send_control(2, Control::EndOfPhase { groups_seen: 4 }, 6.0).unwrap();
        let mut got = Vec::new();
        for _ in 0..2 {
            got.push(c.recv().unwrap().from);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }
}
