//! The N×N message fabric.
//!
//! [`Fabric::new`] builds one in-process [`ChannelTransport`] per node;
//! each node thread takes its [`Endpoint`] — the transport-independent
//! reliability layer over any [`Transport`] wire — which can send to any
//! node
//! (including itself — the paper's cost model charges self-partitioned
//! tuples like remote ones, and we follow it) and receive from all.
//!
//! Unbounded channels mean sends never block, so the thread-per-node
//! execution cannot deadlock regardless of phase structure; back-pressure
//! is not modelled (the paper's model has none either — network cost is
//! pure transfer time).
//!
//! ## Reliability under fault injection
//!
//! Every message carries a per-link sequence number. Receivers drop
//! duplicates and reassemble send order per sender, so the fabric is
//! at-least-once-with-dedup: [`crate::FaultPlan`] link faults (drop =
//! delayed retransmit, duplication, reordering) perturb timing but never
//! correctness. Sends and receives return typed [`NetError`]s instead of
//! panicking when a peer is gone — the execution layer turns these into
//! graceful, attributed run failures.
//!
//! A held-back (reordered) message is flushed by the next send on the
//! same link; since every data-carrying link later carries an
//! `EndOfStream` (all algorithms close their streams), no message can be
//! held forever.

use crate::error::NetError;
use crate::fault::{FaultPlan, LinkFaults, SplitMix64};
use crate::message::{Control, DataKind, Message, Payload};
use crate::network::Network;
use crate::stats::{LinkStats, NetStats};
use crate::transport::{ChannelTransport, SendFailure, Transport};
use adaptagg_model::NetworkKind;
use adaptagg_storage::Page;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// How many per-page transfer times a "dropped" (retransmitted) message
/// arrives late by.
const RETRANSMIT_PENALTY_PAGES: f64 = 3.0;

/// Bounded retry-with-backoff for sends that fail with a dead peer.
///
/// In the simulation a closed endpoint never comes back, so the retries
/// model the *cost* of probing a transiently-unreachable peer before the
/// failure escalates to the recovery layer (which reassigns the peer's
/// work). Each retry charges exponentially-growing virtual backoff,
/// accumulated on the endpoint ([`Endpoint::take_retry_backoff_ms`]) and
/// counted in [`NetStats::send_retries`]. `None` (the default) keeps the
/// pre-recovery fail-fast behaviour, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkRetryPolicy {
    /// Re-attempts after the first failure before giving up.
    pub max_retries: u32,
    /// Virtual backoff before the first retry, in ms.
    pub backoff_ms: f64,
    /// Multiplier applied to the backoff between retries.
    pub backoff_multiplier: f64,
    /// Random jitter applied to each backoff step: the charged wait is
    /// uniform in `[backoff · (1 − j), backoff · (1 + j)]`. Without it,
    /// concurrent senders probing the same dead peer retry in lockstep
    /// (synchronized bursts); with it, retries de-correlate. Draws come
    /// from a per-endpoint stream seeded by the fault plan, so runs stay
    /// deterministic per seed. `0.0` disables jitter exactly.
    pub jitter_frac: f64,
}

impl Default for LinkRetryPolicy {
    fn default() -> Self {
        LinkRetryPolicy {
            max_retries: 2,
            backoff_ms: 1.0,
            backoff_multiplier: 2.0,
            jitter_frac: 0.25,
        }
    }
}

impl LinkRetryPolicy {
    /// The same policy with jitter disabled (exact-backoff tests).
    pub fn without_jitter(mut self) -> Self {
        self.jitter_frac = 0.0;
        self
    }
}

/// Builds endpoints for an `n`-node cluster.
#[derive(Debug)]
pub struct Fabric {
    endpoints: Vec<Endpoint>,
}

impl Fabric {
    /// A fault-free fabric of `n` endpoints over the given network model.
    pub fn new(n: usize, kind: NetworkKind) -> Self {
        Fabric::with_faults(n, kind, &FaultPlan::none())
    }

    /// A fabric whose links suffer the given plan's message faults.
    pub fn with_faults(n: usize, kind: NetworkKind, plan: &FaultPlan) -> Self {
        let network = Network::new(kind);
        let endpoints = ChannelTransport::mesh(n)
            .into_iter()
            .map(|wire| Endpoint::over(Box::new(wire), network.clone(), plan))
            .collect();
        Fabric { endpoints }
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the fabric has no endpoints.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Take all endpoints (one per node thread), in node order.
    pub fn into_endpoints(self) -> Vec<Endpoint> {
        self.endpoints
    }
}

/// Sender-side state for one outgoing link.
#[derive(Debug)]
struct LinkState {
    /// The link's deterministic fault stream.
    rng: SplitMix64,
    /// A reordered message awaiting the link's next send.
    held: Option<Message>,
    /// Sequence number for the next message on this link.
    next_seq: u64,
    /// Per-destination traffic counters (observability).
    stats: LinkStats,
}

/// One node's attachment to the fabric.
#[derive(Debug)]
pub struct Endpoint {
    node: usize,
    nodes: usize,
    /// The raw wire: in-process channels or real TCP — everything else
    /// in this struct is transport-independent (see [`Transport`]).
    wire: Box<dyn Transport>,
    /// In-sequence messages awaiting delivery — either reassembled from
    /// the wire or stashed because their virtual arrival time is still
    /// in this node's future (see [`Endpoint::try_recv_arrived`]).
    pending: std::collections::VecDeque<Message>,
    network: Network,
    stats: NetStats,
    /// Per-link fault probabilities (all zero when injection is off).
    link_faults: LinkFaults,
    /// Per-destination link state (seq stamping + fault stream).
    links: Vec<LinkState>,
    /// Next expected sequence number per sender.
    expected_seq: Vec<u64>,
    /// Out-of-order messages buffered per sender until their gap fills.
    ooo: Vec<BTreeMap<u64, Message>>,
    /// Bounded retry for failed sends (`None` = fail fast, the default).
    retry_policy: Option<LinkRetryPolicy>,
    /// Virtual backoff accrued by retries since the last
    /// [`Endpoint::take_retry_backoff_ms`] — the execution layer drains
    /// this into the node's clock as wait time.
    retry_backoff_ms: f64,
    /// Deterministic stream for retry-backoff jitter, seeded from the
    /// fault plan and this node's id (independent of the link fault
    /// streams, so enabling jitter perturbs no fault schedule).
    retry_rng: SplitMix64,
}

impl Endpoint {
    /// Attach the fabric's reliability layer to a raw wire: sequence
    /// stamping, fault injection, dedup/reassembly, and virtual-time
    /// transfer accounting all live here, identically for every
    /// [`Transport`] backend.
    pub fn over(wire: Box<dyn Transport>, network: Network, plan: &FaultPlan) -> Endpoint {
        let node = wire.node();
        let n = wire.nodes();
        let mut s = plan.seed() ^ 0x517c_c1b7_2722_0a95;
        s = s.wrapping_mul(0x100_0000_01b3) ^ (node as u64).wrapping_add(1);
        Endpoint {
            node,
            nodes: n,
            wire,
            pending: std::collections::VecDeque::new(),
            network,
            stats: NetStats::default(),
            link_faults: plan.link_faults(),
            links: (0..n)
                .map(|to| LinkState {
                    rng: plan.link_rng(node, to),
                    held: None,
                    next_seq: 0,
                    stats: LinkStats::default(),
                })
                .collect(),
            expected_seq: vec![0; n],
            ooo: (0..n).map(|_| BTreeMap::new()).collect(),
            retry_policy: None,
            retry_backoff_ms: 0.0,
            retry_rng: SplitMix64::new(s),
        }
    }
    /// This endpoint's node id.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Cluster size.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The shared network (for utilization reports).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Per-destination traffic counters, indexed by destination node.
    pub fn link_stats(&self, to: usize) -> &LinkStats {
        &self.links[to].stats
    }

    /// Enable (or disable) bounded retry for failed sends on this
    /// endpoint's outgoing links.
    pub fn set_retry_policy(&mut self, policy: Option<LinkRetryPolicy>) {
        self.retry_policy = policy;
    }

    /// Drain the virtual backoff accrued by send retries since the last
    /// call. The execution layer charges it to the node's clock as wait.
    pub fn take_retry_backoff_ms(&mut self) -> f64 {
        std::mem::replace(&mut self.retry_backoff_ms, 0.0)
    }

    /// Virtual-time latency added to a message the fault plan drops
    /// (modelling its retransmit).
    fn retransmit_penalty_ms(&self) -> f64 {
        RETRANSMIT_PENALTY_PAGES * self.network.kind().ms_per_page()
    }

    /// Send a data page to `to`. `now_ms` is the sender's virtual time
    /// when the send is issued; the return value is the virtual time when
    /// the transfer completes, which the caller assigns back to its clock
    /// (the sender is occupied for the duration, matching the analytical
    /// model's `m_l` charge). The receiver will observe at least this time.
    ///
    /// Fails with [`NetError::PeerDown`] if `to`'s endpoint was dropped
    /// (its node already failed or finished).
    pub fn send_data(
        &mut self,
        to: usize,
        kind: DataKind,
        page: Page,
        now_ms: f64,
    ) -> Result<f64, NetError> {
        debug_assert!(to < self.nodes, "destination {to} out of range");
        let mut done = self.network.transfer(now_ms, 1);
        self.stats
            .on_send_data(kind, page.bytes_used(), page.tuple_count());
        let link = &mut self.links[to].stats;
        link.msgs += 1;
        link.pages += 1;
        link.bytes += page.bytes_used() as u64;
        link.tuples += page.tuple_count() as u64;
        let fate = self.roll_link_faults(to);
        if fate.drop {
            // Lost on the wire, retransmitted: same message, same sequence
            // number, arriving late — and the sender is occupied until the
            // retransmit completes.
            done += self.retransmit_penalty_ms();
            self.stats.injected_drops += 1;
            self.links[to].stats.drops += 1;
        }
        let msg = Message {
            from: self.node,
            seq: self.stamp_seq(to),
            sent_at_ms: done,
            payload: Payload::Data { kind, page },
        };
        self.link_send(to, msg, fate)?;
        Ok(done)
    }

    /// Send a control message to `to` (zero transfer time; see
    /// [`Message::transfer_pages`]).
    pub fn send_control(
        &mut self,
        to: usize,
        control: Control,
        now_ms: f64,
    ) -> Result<(), NetError> {
        debug_assert!(to < self.nodes, "destination {to} out of range");
        self.stats.control_sent += 1;
        self.links[to].stats.msgs += 1;
        let mut fate = self.roll_link_faults(to);
        let mut sent_at_ms = now_ms;
        if fate.drop {
            sent_at_ms += self.retransmit_penalty_ms();
            self.stats.injected_drops += 1;
            self.links[to].stats.drops += 1;
        }
        // Only data pages are ever held back: holding a control message
        // could stall a protocol (e.g. a decision broadcast) until the
        // link's next send, which may be its last.
        fate.reorder = false;
        let msg = Message {
            from: self.node,
            seq: self.stamp_seq(to),
            sent_at_ms,
            payload: Payload::Control(control),
        };
        self.link_send(to, msg, fate)
    }

    /// Broadcast a control message to every *other* node. Peers that are
    /// already down are skipped — a failing node must be able to notify
    /// the survivors even when some peers died first.
    pub fn broadcast_control(&mut self, control: Control, now_ms: f64) -> Result<(), NetError> {
        for to in 0..self.nodes {
            if to != self.node {
                if let Err(NetError::PeerDown { .. }) =
                    self.send_control(to, control.clone(), now_ms)
                {
                    continue;
                }
            }
        }
        Ok(())
    }

    /// Draw this send's fault fate from the link's deterministic stream.
    /// Self-sends are loopback — never faulted. A fault-free plan draws
    /// nothing (zero cost, identical streams with or without the layer).
    fn roll_link_faults(&mut self, to: usize) -> LinkFate {
        if to == self.node || !self.link_faults.any() {
            return LinkFate::default();
        }
        let rng = &mut self.links[to].rng;
        LinkFate {
            drop: rng.next_f64() < self.link_faults.drop_prob,
            dup: rng.next_f64() < self.link_faults.dup_prob,
            reorder: rng.next_f64() < self.link_faults.reorder_prob,
        }
    }

    /// Stamp the next sequence number for the `self → to` link.
    fn stamp_seq(&mut self, to: usize) -> u64 {
        let seq = self.links[to].next_seq;
        self.links[to].next_seq += 1;
        seq
    }

    /// Physically transmit `msg` on the link, applying duplication and
    /// reordering, and flushing any previously held message.
    fn link_send(&mut self, to: usize, msg: Message, fate: LinkFate) -> Result<(), NetError> {
        let mut delivered = false;
        if fate.dup {
            self.stats.injected_dups += 1;
            self.push_wire(to, msg.clone())?;
            delivered = true;
        }
        if fate.reorder && self.links[to].held.is_none() {
            self.stats.injected_reorders += 1;
            self.links[to].held = Some(msg);
            return Ok(());
        }
        if let Err(e) = self.push_wire(to, msg) {
            // With a duplicate already through, this copy is redundant: the
            // receiver deduplicated the first one and may have legitimately
            // finished and closed its endpoint in between. At-least-once
            // delivery was satisfied; only a send with *no* copy delivered
            // is a real peer failure.
            return if delivered { Ok(()) } else { Err(e) };
        }
        if let Some(held) = self.links[to].held.take() {
            self.push_wire(to, held)?;
        }
        Ok(())
    }

    fn push_wire(&mut self, to: usize, msg: Message) -> Result<(), NetError> {
        match self.wire.send(to, msg) {
            Ok(()) => Ok(()),
            Err(failed) => self.retry_push(to, failed),
        }
    }

    /// A send failed (the peer is unreachable). Under a retry policy,
    /// re-attempt up to `max_retries` times, charging exponential virtual
    /// backoff (jittered per [`LinkRetryPolicy::jitter_frac`]) per
    /// attempt; give up with the transport's typed error once the budget
    /// is spent so the failure can escalate to recovery. Without a
    /// policy this is the old fail-fast path (zero draws, zero cost).
    fn retry_push(&mut self, to: usize, failed: SendFailure) -> Result<(), NetError> {
        let SendFailure { mut msg, mut err } = failed;
        let Some(policy) = self.retry_policy else {
            return Err(err);
        };
        let mut backoff = policy.backoff_ms;
        for _ in 0..policy.max_retries {
            self.stats.send_retries += 1;
            self.links[to].stats.retries += 1;
            let wait = if policy.jitter_frac > 0.0 {
                backoff * (1.0 + policy.jitter_frac * (2.0 * self.retry_rng.next_f64() - 1.0))
            } else {
                backoff
            };
            self.retry_backoff_ms += wait;
            // The retransmit would arrive after the backoff.
            msg.sent_at_ms += wait;
            match self.wire.send(to, *msg) {
                Ok(()) => return Ok(()),
                Err(f) => {
                    msg = f.msg;
                    err = f.err;
                }
            }
            backoff *= policy.backoff_multiplier;
        }
        Err(err)
    }

    /// Blocking receive. Returns the message; the caller merges
    /// `msg.sent_at_ms` into its clock and charges receive-side costs.
    /// Blocking means "wait until something arrives", so virtual arrival
    /// times in the future are fine (the wait becomes Lamport time).
    /// Messages stashed by [`Endpoint::try_recv_arrived`] are delivered
    /// first, earliest virtual timestamp first.
    pub fn recv(&mut self) -> Result<Message, NetError> {
        loop {
            if let Some(msg) = self.pop_pending(f64::INFINITY) {
                return Ok(msg);
            }
            let msg = self.wire.recv()?;
            self.ingest(msg);
        }
    }

    /// Non-blocking receive of a message that has *virtually arrived* by
    /// `now_ms` (the Adaptive Repartitioning scan polls for `EndOfPhase`
    /// while partitioning). A poll must not see the future: a message
    /// whose send completes at virtual time `T > now_ms` has not arrived
    /// yet, so it is stashed and the poll keeps looking. Without this
    /// rule, polls would Lamport-drag every clock forward in a feedback
    /// loop and inflate elapsed times cluster-wide.
    ///
    /// A transport that has declared a peer dead surfaces that here as
    /// `Err(NetError::PeerDown)` — failure detection must reach pollers,
    /// not only blocked receivers.
    pub fn try_recv_arrived(&mut self, now_ms: f64) -> Result<Option<Message>, NetError> {
        while let Some(msg) = self.wire.try_recv()? {
            self.ingest(msg);
        }
        Ok(self.pop_pending(now_ms))
    }

    /// Non-blocking receive regardless of virtual arrival time (tests).
    pub fn try_recv(&mut self) -> Result<Option<Message>, NetError> {
        self.try_recv_arrived(f64::INFINITY)
    }

    /// Whether the transport knows `peer` has left the mesh for good
    /// (graceful goodbye or declared dead). See
    /// [`Transport::peer_gone`] — `false` means "unknown", not alive.
    pub fn peer_gone(&self, peer: usize) -> bool {
        self.wire.peer_gone(peer)
    }

    /// Receive with a real-time deadline — the watchdog against protocol
    /// hangs: even if every peer died without a trace, the receiver
    /// surfaces [`NetError::Deadline`] instead of blocking forever.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Message, NetError> {
        let start = Instant::now();
        loop {
            if let Some(msg) = self.pop_pending(f64::INFINITY) {
                return Ok(msg);
            }
            let remaining = timeout
                .checked_sub(start.elapsed())
                .ok_or(NetError::Deadline {
                    waited_ms: timeout.as_millis() as u64,
                })?;
            match self.wire.recv_deadline(remaining) {
                Ok(msg) => self.ingest(msg),
                Err(NetError::Deadline { .. }) => {
                    return Err(NetError::Deadline {
                        waited_ms: timeout.as_millis() as u64,
                    })
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Feed a raw wire arrival through per-sender dedup + reassembly.
    /// In-sequence messages (and any out-of-order successors they
    /// unblock) land in `pending`; duplicates are dropped; gaps wait.
    fn ingest(&mut self, msg: Message) {
        let from = msg.from;
        let expected = &mut self.expected_seq[from];
        match msg.seq.cmp(expected) {
            std::cmp::Ordering::Less => {
                self.stats.dup_dropped += 1;
            }
            std::cmp::Ordering::Greater => {
                // Insert overwrites an identical buffered duplicate.
                self.ooo[from].insert(msg.seq, msg);
            }
            std::cmp::Ordering::Equal => {
                *expected += 1;
                self.pending.push_back(msg);
                while let Some(next) = self.ooo[from].remove(&self.expected_seq[from]) {
                    self.expected_seq[from] += 1;
                    self.pending.push_back(next);
                }
            }
        }
    }

    /// Pop the earliest-timestamped pending message that arrived by
    /// `deadline_ms`. Abort notifications are exempt from the deadline:
    /// failure propagation is about real execution, not simulated time, so
    /// a poll must see an abort even when its virtual timestamp is ahead
    /// of the polling node's clock.
    fn pop_pending(&mut self, deadline_ms: f64) -> Option<Message> {
        let idx = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, m)| {
                m.sent_at_ms <= deadline_ms
                    || matches!(&m.payload, Payload::Control(Control::Abort { .. }))
            })
            .min_by(|(_, a), (_, b)| {
                // Tie-break equal timestamps by (sender, seq), not queue
                // position: queue order reflects real arrival
                // interleaving across senders, and delivering on it
                // makes virtual time scheduling-dependent (ULP-level
                // drift in float accumulation order under load).
                a.sent_at_ms
                    .total_cmp(&b.sent_at_ms)
                    .then_with(|| a.from.cmp(&b.from))
                    .then_with(|| a.seq.cmp(&b.seq))
            })
            .map(|(i, _)| i)?;
        let msg = self.pending.remove(idx).expect("index valid");
        self.note_received(&msg);
        Some(msg)
    }

    fn note_received(&mut self, msg: &Message) {
        match &msg.payload {
            Payload::Data { page, .. } => self.stats.on_recv_data(page.tuple_count()),
            Payload::Control(_) => self.stats.control_received += 1,
        }
    }
}

/// The fate the fault stream assigned to one send.
#[derive(Debug, Default, Clone, Copy)]
struct LinkFate {
    drop: bool,
    dup: bool,
    reorder: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::Value;

    fn page_with(n: usize) -> Page {
        let mut p = Page::new(2048);
        for i in 0..n {
            assert!(p.try_push(&[Value::Int(i as i64)]).unwrap());
        }
        p
    }

    #[test]
    fn point_to_point_delivery_carries_timestamp() {
        let mut eps = Fabric::new(2, NetworkKind::HighSpeed { latency_ms: 0.5 }).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        assert_eq!(a.node(), 0);
        assert_eq!(b.node(), 1);

        let done = a.send_data(1, DataKind::Raw, page_with(3), 10.0).unwrap();
        assert_eq!(done, 10.5);
        let msg = b.recv().unwrap();
        assert_eq!(msg.from, 0);
        assert_eq!(msg.seq, 0);
        assert_eq!(msg.sent_at_ms, 10.5);
        match msg.payload {
            Payload::Data { kind, page } => {
                assert_eq!(kind, DataKind::Raw);
                assert_eq!(page.tuple_count(), 3);
            }
            _ => panic!("expected data"),
        }
        assert_eq!(a.stats().pages_sent(), 1);
        assert_eq!(b.stats().pages_received, 1);
        assert_eq!(b.stats().tuples_received, 3);
    }

    #[test]
    fn self_send_works() {
        let mut eps = Fabric::new(1, NetworkKind::high_speed_default()).into_endpoints();
        let mut a = eps.pop().unwrap();
        a.send_data(0, DataKind::Partial, page_with(1), 0.0).unwrap();
        let msg = a.recv().unwrap();
        assert_eq!(msg.from, 0);
        assert!(msg.payload.is_data());
    }

    #[test]
    fn broadcast_reaches_everyone_but_self() {
        let mut eps = Fabric::new(3, NetworkKind::high_speed_default()).into_endpoints();
        let mut c = eps.pop().unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.broadcast_control(Control::EndOfPhase { groups_seen: 7 }, 1.0)
            .unwrap();
        for ep in [&mut b, &mut c] {
            let msg = ep.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(
                msg.payload,
                Payload::Control(Control::EndOfPhase { groups_seen: 7 })
            );
        }
        assert!(a.try_recv().unwrap().is_none(), "broadcast must not loop back");
        assert_eq!(a.stats().control_sent, 2);
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let mut eps = Fabric::new(1, NetworkKind::high_speed_default()).into_endpoints();
        let mut a = eps.pop().unwrap();
        assert!(a.try_recv().unwrap().is_none());
    }

    #[test]
    fn shared_bus_timestamps_reflect_contention() {
        let mut eps = Fabric::new(2, NetworkKind::SharedBus { ms_per_page: 2.0 }).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let t1 = a.send_data(1, DataKind::Raw, page_with(1), 0.0).unwrap();
        let t2 = a.send_data(1, DataKind::Raw, page_with(1), 0.0).unwrap();
        assert_eq!(t1, 2.0);
        assert_eq!(t2, 4.0, "second page waits for the bus");
        assert_eq!(b.recv().unwrap().sent_at_ms, 2.0);
        assert_eq!(b.recv().unwrap().sent_at_ms, 4.0);
    }

    #[test]
    fn cross_thread_delivery() {
        let mut eps = Fabric::new(2, NetworkKind::high_speed_default()).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                a.send_data(1, DataKind::Raw, page_with(i + 1), i as f64)
                    .unwrap();
            }
            a.send_control(1, Control::EndOfStream, 10.0).unwrap();
        });
        let mut pages = 0;
        loop {
            let msg = b.recv_timeout(Duration::from_secs(5)).unwrap();
            match msg.payload {
                Payload::Data { .. } => pages += 1,
                Payload::Control(Control::EndOfStream) => break,
                _ => panic!("unexpected control"),
            }
        }
        h.join().unwrap();
        assert_eq!(pages, 10);
    }

    #[test]
    fn send_to_dropped_peer_is_a_typed_error() {
        let mut eps = Fabric::new(2, NetworkKind::high_speed_default()).into_endpoints();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        drop(b);
        assert_eq!(
            a.send_data(1, DataKind::Raw, page_with(1), 0.0),
            Err(NetError::PeerDown { peer: 1 })
        );
        assert_eq!(
            a.send_control(1, Control::EndOfStream, 0.0),
            Err(NetError::PeerDown { peer: 1 })
        );
        // A broadcast skips the dead peer instead of failing.
        assert!(a.broadcast_control(Control::EndOfStream, 0.0).is_ok());
    }

    #[test]
    fn recv_timeout_reports_deadline() {
        let mut eps = Fabric::new(2, NetworkKind::high_speed_default()).into_endpoints();
        let mut b = eps.pop().unwrap();
        let _a = eps.pop().unwrap();
        match b.recv_timeout(Duration::from_millis(20)) {
            Err(NetError::Deadline { waited_ms }) => assert_eq!(waited_ms, 20),
            other => panic!("expected deadline, got {other:?}"),
        }
    }

    #[test]
    fn sequence_numbers_are_per_link() {
        let mut eps = Fabric::new(3, NetworkKind::high_speed_default()).into_endpoints();
        let mut c = eps.pop().unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send_data(1, DataKind::Raw, page_with(1), 0.0).unwrap();
        a.send_data(2, DataKind::Raw, page_with(1), 0.0).unwrap();
        a.send_data(1, DataKind::Raw, page_with(1), 0.0).unwrap();
        assert_eq!(b.recv().unwrap().seq, 0);
        assert_eq!(b.recv().unwrap().seq, 1);
        assert_eq!(c.recv().unwrap().seq, 0);
    }

    #[test]
    fn duplicates_are_dropped_by_seq() {
        let mut eps = Fabric::new(2, NetworkKind::high_speed_default()).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        // Forge a duplicate by sending the same seq twice on the wire.
        let msg = Message {
            from: 0,
            seq: 0,
            sent_at_ms: 1.0,
            payload: Payload::Data {
                kind: DataKind::Raw,
                page: page_with(2),
            },
        };
        a.push_wire(1, msg.clone()).unwrap();
        a.push_wire(1, msg).unwrap();
        assert!(b.try_recv().unwrap().is_some());
        assert!(b.try_recv().unwrap().is_none(), "duplicate must be dropped");
        assert_eq!(b.stats().dup_dropped, 1);
        assert_eq!(b.stats().pages_received, 1, "dup not counted as received");
    }

    #[test]
    fn out_of_order_arrivals_are_reassembled() {
        let mut eps = Fabric::new(2, NetworkKind::high_speed_default()).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for seq in [2u64, 0, 1] {
            let msg = Message {
                from: 0,
                seq,
                sent_at_ms: seq as f64,
                payload: Payload::Data {
                    kind: DataKind::Raw,
                    page: page_with(seq as usize + 1),
                },
            };
            a.push_wire(1, msg).unwrap();
        }
        let seqs: Vec<u64> = (0..3).map(|_| b.recv().unwrap().seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "delivery must follow send order");
    }

    #[test]
    fn drop_fault_delays_but_delivers() {
        let plan = FaultPlan::new(3).with_link_faults(LinkFaults {
            drop_prob: 1.0, // every message is "dropped" (retransmitted)
            ..LinkFaults::default()
        });
        let mut eps =
            Fabric::with_faults(2, NetworkKind::HighSpeed { latency_ms: 0.5 }, &plan)
                .into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let done = a.send_data(1, DataKind::Raw, page_with(1), 0.0).unwrap();
        assert_eq!(done, 0.5 + 3.0 * 0.5, "retransmit penalty charged");
        let msg = b.recv().unwrap();
        assert_eq!(msg.sent_at_ms, done, "late, but delivered exactly once");
        assert!(b.try_recv().unwrap().is_none());
        assert_eq!(a.stats().injected_drops, 1);
    }

    #[test]
    fn dup_fault_is_invisible_after_dedup() {
        let plan = FaultPlan::new(4).with_link_faults(LinkFaults {
            dup_prob: 1.0,
            ..LinkFaults::default()
        });
        let mut eps = Fabric::with_faults(2, NetworkKind::high_speed_default(), &plan)
            .into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for _ in 0..5 {
            a.send_data(1, DataKind::Raw, page_with(1), 0.0).unwrap();
        }
        a.send_control(1, Control::EndOfStream, 0.0).unwrap();
        let mut data = 0;
        loop {
            match b.recv().unwrap().payload {
                Payload::Data { .. } => data += 1,
                Payload::Control(Control::EndOfStream) => break,
                _ => unreachable!(),
            }
        }
        assert_eq!(data, 5, "every page delivered exactly once");
        assert_eq!(a.stats().injected_dups, 6);
        // The duplicate of the final EndOfStream is still on the wire when
        // the loop breaks, so only the five data duplicates were discarded.
        assert_eq!(b.stats().dup_dropped, 5);
    }

    #[test]
    fn reorder_fault_preserves_send_order_after_reassembly() {
        let plan = FaultPlan::new(5).with_link_faults(LinkFaults {
            reorder_prob: 1.0,
            ..LinkFaults::default()
        });
        let mut eps = Fabric::with_faults(2, NetworkKind::high_speed_default(), &plan)
            .into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for i in 0..6 {
            a.send_data(1, DataKind::Raw, page_with(i + 1), i as f64)
                .unwrap();
        }
        a.send_control(1, Control::EndOfStream, 6.0).unwrap();
        let mut sizes = Vec::new();
        loop {
            match b.recv().unwrap().payload {
                Payload::Data { page, .. } => sizes.push(page.tuple_count()),
                Payload::Control(Control::EndOfStream) => break,
                _ => unreachable!(),
            }
        }
        assert_eq!(sizes, vec![1, 2, 3, 4, 5, 6]);
        assert!(a.stats().injected_reorders > 0);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let run = |seed: u64| -> (u64, u64, u64) {
            let plan = FaultPlan::new(seed).with_link_faults(LinkFaults {
                drop_prob: 0.3,
                dup_prob: 0.3,
                reorder_prob: 0.3,
            });
            let mut eps = Fabric::with_faults(2, NetworkKind::high_speed_default(), &plan)
                .into_endpoints();
            let _b = eps.pop().unwrap();
            let mut a = eps.pop().unwrap();
            for i in 0..50 {
                a.send_data(1, DataKind::Raw, page_with(1), i as f64)
                    .unwrap();
            }
            let s = a.stats();
            (s.injected_drops, s.injected_dups, s.injected_reorders)
        };
        assert_eq!(run(11), run(11), "same seed, same schedule");
        assert_ne!(run(11), run(12), "different seeds differ");
    }

    #[test]
    fn retry_policy_probes_a_dead_peer_then_escalates() {
        let mut eps = Fabric::new(2, NetworkKind::high_speed_default()).into_endpoints();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.set_retry_policy(Some(LinkRetryPolicy {
            max_retries: 3,
            backoff_ms: 2.0,
            backoff_multiplier: 2.0,
            jitter_frac: 0.0,
        }));
        drop(b);
        assert_eq!(
            a.send_data(1, DataKind::Raw, page_with(1), 0.0),
            Err(NetError::PeerDown { peer: 1 }),
            "a permanently dead peer still escalates"
        );
        assert_eq!(a.stats().send_retries, 3);
        // Exponential backoff: 2 + 4 + 8.
        assert_eq!(a.take_retry_backoff_ms(), 14.0);
        assert_eq!(a.take_retry_backoff_ms(), 0.0, "drained");
    }

    #[test]
    fn retry_jitter_is_bounded_and_deterministic_per_seed() {
        // With jitter j, each backoff step is scaled into [1-j, 1+j] by a
        // draw from the endpoint's seeded stream: bounded (never a wild
        // wait), de-correlated across nodes (no lockstep bursts), and
        // fully reproducible per fault-plan seed.
        let probe = |plan_seed: u64| -> f64 {
            let plan = FaultPlan::new(plan_seed);
            let mut eps =
                Fabric::with_faults(2, NetworkKind::high_speed_default(), &plan).into_endpoints();
            let b = eps.pop().unwrap();
            let mut a = eps.pop().unwrap();
            a.set_retry_policy(Some(LinkRetryPolicy {
                max_retries: 3,
                backoff_ms: 2.0,
                backoff_multiplier: 2.0,
                jitter_frac: 0.5,
            }));
            drop(b);
            assert_eq!(
                a.send_data(1, DataKind::Raw, page_with(1), 0.0),
                Err(NetError::PeerDown { peer: 1 })
            );
            a.take_retry_backoff_ms()
        };
        let total = probe(9);
        // Nominal total is 2 + 4 + 8 = 14; jitter keeps it within ±50 %.
        assert!((7.0..=21.0).contains(&total), "got {total}");
        assert_eq!(probe(9), total, "same seed, same jitter");
        assert_ne!(probe(10), total, "different seeds de-correlate");
        // Disabling jitter restores the exact exponential series.
        let exact = {
            let mut eps = Fabric::new(2, NetworkKind::high_speed_default()).into_endpoints();
            let b = eps.pop().unwrap();
            let mut a = eps.pop().unwrap();
            a.set_retry_policy(Some(
                LinkRetryPolicy {
                    max_retries: 3,
                    backoff_ms: 2.0,
                    backoff_multiplier: 2.0,
                    jitter_frac: 0.9,
                }
                .without_jitter(),
            ));
            drop(b);
            let _ = a.send_data(1, DataKind::Raw, page_with(1), 0.0);
            a.take_retry_backoff_ms()
        };
        assert_eq!(exact, 14.0);
    }

    #[test]
    fn retry_jitter_differs_across_nodes_under_one_plan() {
        // Two endpoints of the same fabric probing dead peers must draw
        // different jitter (per-node streams) — that is the point of
        // de-correlating retries.
        let plan = FaultPlan::new(77);
        let mut eps =
            Fabric::with_faults(3, NetworkKind::high_speed_default(), &plan).into_endpoints();
        let c = eps.pop().unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let policy = LinkRetryPolicy {
            max_retries: 4,
            backoff_ms: 2.0,
            backoff_multiplier: 2.0,
            jitter_frac: 0.5,
        };
        a.set_retry_policy(Some(policy));
        b.set_retry_policy(Some(policy));
        drop(c);
        let _ = a.send_data(2, DataKind::Raw, page_with(1), 0.0);
        let _ = b.send_data(2, DataKind::Raw, page_with(1), 0.0);
        assert_ne!(
            a.take_retry_backoff_ms(),
            b.take_retry_backoff_ms(),
            "nodes must not retry in lockstep"
        );
    }

    #[test]
    fn no_retry_policy_fails_fast_with_zero_cost() {
        let mut eps = Fabric::new(2, NetworkKind::high_speed_default()).into_endpoints();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        drop(b);
        assert_eq!(
            a.send_data(1, DataKind::Raw, page_with(1), 0.0),
            Err(NetError::PeerDown { peer: 1 })
        );
        assert_eq!(a.stats().send_retries, 0);
        assert_eq!(a.take_retry_backoff_ms(), 0.0);
    }

    #[test]
    fn retry_policy_is_invisible_on_healthy_links() {
        let mut eps = Fabric::new(2, NetworkKind::HighSpeed { latency_ms: 0.5 }).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.set_retry_policy(Some(LinkRetryPolicy::default()));
        let done = a.send_data(1, DataKind::Raw, page_with(1), 1.0).unwrap();
        assert_eq!(done, 1.5, "timestamps identical to the no-policy path");
        assert_eq!(b.recv().unwrap().sent_at_ms, 1.5);
        assert_eq!(a.stats().send_retries, 0);
        assert_eq!(a.take_retry_backoff_ms(), 0.0);
    }

    #[test]
    fn link_stats_attribute_traffic_per_destination() {
        let mut eps = Fabric::new(3, NetworkKind::high_speed_default()).into_endpoints();
        let _c = eps.pop().unwrap();
        let _b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send_data(1, DataKind::Raw, page_with(3), 0.0).unwrap();
        a.send_data(1, DataKind::Raw, page_with(2), 0.0).unwrap();
        a.send_data(2, DataKind::Partial, page_with(1), 0.0).unwrap();
        a.send_control(2, Control::EndOfStream, 0.0).unwrap();
        let to1 = *a.link_stats(1);
        let to2 = *a.link_stats(2);
        assert_eq!((to1.msgs, to1.pages, to1.tuples), (2, 2, 5));
        assert_eq!((to2.msgs, to2.pages, to2.tuples), (2, 1, 1));
        assert!(to1.bytes > to2.bytes);
        assert_eq!(a.link_stats(0).msgs, 0, "no self traffic sent");
        // Aggregate stats stay consistent with the per-link split.
        assert_eq!(a.stats().pages_sent(), to1.pages + to2.pages);
    }

    #[test]
    fn link_stats_count_drops_and_retries() {
        let plan = FaultPlan::new(3).with_link_faults(LinkFaults {
            drop_prob: 1.0,
            ..LinkFaults::default()
        });
        let mut eps = Fabric::with_faults(2, NetworkKind::high_speed_default(), &plan)
            .into_endpoints();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send_data(1, DataKind::Raw, page_with(1), 0.0).unwrap();
        assert_eq!(a.link_stats(1).drops, 1);
        a.set_retry_policy(Some(LinkRetryPolicy::default()));
        drop(b);
        let _ = a.send_data(1, DataKind::Raw, page_with(1), 0.0);
        assert_eq!(a.link_stats(1).retries, 2);
    }

    #[test]
    fn fault_free_plan_adds_nothing() {
        // With FaultPlan::none() the fabric must behave byte-identically
        // to the pre-injection fabric: same timestamps, no fault stats.
        let mut eps = Fabric::new(2, NetworkKind::HighSpeed { latency_ms: 0.5 }).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let done = a.send_data(1, DataKind::Raw, page_with(1), 1.0).unwrap();
        assert_eq!(done, 1.5);
        assert_eq!(b.recv().unwrap().sent_at_ms, 1.5);
        let s = a.stats();
        assert_eq!(
            (s.injected_drops, s.injected_dups, s.injected_reorders),
            (0, 0, 0)
        );
    }
}
