//! The N×N message fabric.
//!
//! [`Fabric::new`] builds one unbounded crossbeam channel per node; each
//! node thread takes its [`Endpoint`], which can send to any node
//! (including itself — the paper's cost model charges self-partitioned
//! tuples like remote ones, and we follow it) and receive from all.
//!
//! Unbounded channels mean sends never block, so the thread-per-node
//! execution cannot deadlock regardless of phase structure; back-pressure
//! is not modelled (the paper's model has none either — network cost is
//! pure transfer time).

use crate::message::{Control, DataKind, Message, Payload};
use crate::network::Network;
use crate::stats::NetStats;
use adaptagg_model::NetworkKind;
use adaptagg_storage::Page;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Builds endpoints for an `n`-node cluster.
#[derive(Debug)]
pub struct Fabric {
    endpoints: Vec<Endpoint>,
}

impl Fabric {
    /// A fabric of `n` endpoints over the given network model.
    pub fn new(n: usize, kind: NetworkKind) -> Self {
        let network = Network::new(kind);
        let (senders, receivers): (Vec<Sender<Message>>, Vec<Receiver<Message>>) =
            (0..n).map(|_| unbounded()).unzip();
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(id, rx)| Endpoint {
                node: id,
                nodes: n,
                senders: senders.clone(),
                rx,
                pending: std::collections::VecDeque::new(),
                network: network.clone(),
                stats: NetStats::default(),
            })
            .collect();
        Fabric { endpoints }
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the fabric has no endpoints.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Take all endpoints (one per node thread), in node order.
    pub fn into_endpoints(self) -> Vec<Endpoint> {
        self.endpoints
    }
}

/// One node's attachment to the fabric.
#[derive(Debug)]
pub struct Endpoint {
    node: usize,
    nodes: usize,
    senders: Vec<Sender<Message>>,
    rx: Receiver<Message>,
    /// Messages pulled off the channel whose virtual arrival time is
    /// still in this node's future (see [`Endpoint::try_recv_arrived`]).
    pending: std::collections::VecDeque<Message>,
    network: Network,
    stats: NetStats,
}

impl Endpoint {
    /// This endpoint's node id.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Cluster size.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The shared network (for utilization reports).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Send a data page to `to`. `now_ms` is the sender's virtual time
    /// when the send is issued; the return value is the virtual time when
    /// the transfer completes, which the caller assigns back to its clock
    /// (the sender is occupied for the duration, matching the analytical
    /// model's `m_l` charge). The receiver will observe at least this time.
    pub fn send_data(&mut self, to: usize, kind: DataKind, page: Page, now_ms: f64) -> f64 {
        debug_assert!(to < self.nodes, "destination {to} out of range");
        let done = self.network.transfer(now_ms, 1);
        self.stats
            .on_send_data(kind, page.bytes_used(), page.tuple_count());
        let msg = Message {
            from: self.node,
            sent_at_ms: done,
            payload: Payload::Data { kind, page },
        };
        // A send can only fail if the receiver endpoint was dropped, which
        // means that node's thread already finished its run closure — a
        // protocol violation by the algorithm, not a recoverable state.
        self.senders[to].send(msg).expect("receiver endpoint dropped");
        done
    }

    /// Send a control message to `to` (zero transfer time; see
    /// [`Message::transfer_pages`]).
    pub fn send_control(&mut self, to: usize, control: Control, now_ms: f64) {
        debug_assert!(to < self.nodes, "destination {to} out of range");
        self.stats.control_sent += 1;
        let msg = Message {
            from: self.node,
            sent_at_ms: now_ms,
            payload: Payload::Control(control),
        };
        self.senders[to].send(msg).expect("receiver endpoint dropped");
    }

    /// Broadcast a control message to every *other* node.
    pub fn broadcast_control(&mut self, control: Control, now_ms: f64) {
        for to in 0..self.nodes {
            if to != self.node {
                self.send_control(to, control.clone(), now_ms);
            }
        }
    }

    /// Blocking receive. Returns the message; the caller merges
    /// `msg.sent_at_ms` into its clock and charges receive-side costs.
    /// Blocking means "wait until something arrives", so virtual arrival
    /// times in the future are fine (the wait becomes Lamport time).
    /// Pending messages stashed by [`Endpoint::try_recv_arrived`] are
    /// delivered first, earliest virtual timestamp first.
    ///
    /// Panics if all senders disappeared (protocol violation: a phase is
    /// waiting for data that can never arrive).
    pub fn recv(&mut self) -> Message {
        if let Some(msg) = self.pop_pending(f64::INFINITY) {
            return msg;
        }
        let msg = self.rx.recv().expect("all sender endpoints dropped");
        self.note_received(&msg);
        msg
    }

    /// Non-blocking receive of a message that has *virtually arrived* by
    /// `now_ms` (the Adaptive Repartitioning scan polls for `EndOfPhase`
    /// while partitioning). A poll must not see the future: a message
    /// whose send completes at virtual time `T > now_ms` has not arrived
    /// yet, so it is stashed and the poll keeps looking. Without this
    /// rule, polls would Lamport-drag every clock forward in a feedback
    /// loop and inflate elapsed times cluster-wide.
    pub fn try_recv_arrived(&mut self, now_ms: f64) -> Option<Message> {
        if let Some(msg) = self.pop_pending(now_ms) {
            return Some(msg);
        }
        while let Ok(msg) = self.rx.try_recv() {
            if msg.sent_at_ms <= now_ms {
                self.note_received(&msg);
                return Some(msg);
            }
            self.pending.push_back(msg);
        }
        None
    }

    /// Non-blocking receive regardless of virtual arrival time (tests).
    pub fn try_recv(&mut self) -> Option<Message> {
        self.try_recv_arrived(f64::INFINITY)
    }

    /// Receive with a real-time timeout — used only by tests that must not
    /// hang on protocol bugs.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Message, RecvTimeoutError> {
        if let Some(msg) = self.pop_pending(f64::INFINITY) {
            return Ok(msg);
        }
        let msg = self.rx.recv_timeout(timeout)?;
        self.note_received(&msg);
        Ok(msg)
    }

    /// Pop the earliest-timestamped pending message that arrived by
    /// `deadline_ms`.
    fn pop_pending(&mut self, deadline_ms: f64) -> Option<Message> {
        let idx = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, m)| m.sent_at_ms <= deadline_ms)
            .min_by(|(_, a), (_, b)| a.sent_at_ms.total_cmp(&b.sent_at_ms))
            .map(|(i, _)| i)?;
        let msg = self.pending.remove(idx).expect("index valid");
        self.note_received(&msg);
        Some(msg)
    }

    fn note_received(&mut self, msg: &Message) {
        match &msg.payload {
            Payload::Data { page, .. } => self.stats.on_recv_data(page.tuple_count()),
            Payload::Control(_) => self.stats.control_received += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::Value;

    fn page_with(n: usize) -> Page {
        let mut p = Page::new(2048);
        for i in 0..n {
            assert!(p.try_push(&[Value::Int(i as i64)]).unwrap());
        }
        p
    }

    #[test]
    fn point_to_point_delivery_carries_timestamp() {
        let mut eps = Fabric::new(2, NetworkKind::HighSpeed { latency_ms: 0.5 }).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        assert_eq!(a.node(), 0);
        assert_eq!(b.node(), 1);

        let done = a.send_data(1, DataKind::Raw, page_with(3), 10.0);
        assert_eq!(done, 10.5);
        let msg = b.recv();
        assert_eq!(msg.from, 0);
        assert_eq!(msg.sent_at_ms, 10.5);
        match msg.payload {
            Payload::Data { kind, page } => {
                assert_eq!(kind, DataKind::Raw);
                assert_eq!(page.tuple_count(), 3);
            }
            _ => panic!("expected data"),
        }
        assert_eq!(a.stats().pages_sent(), 1);
        assert_eq!(b.stats().pages_received, 1);
        assert_eq!(b.stats().tuples_received, 3);
    }

    #[test]
    fn self_send_works() {
        let mut eps = Fabric::new(1, NetworkKind::high_speed_default()).into_endpoints();
        let mut a = eps.pop().unwrap();
        a.send_data(0, DataKind::Partial, page_with(1), 0.0);
        let msg = a.recv();
        assert_eq!(msg.from, 0);
        assert!(msg.payload.is_data());
    }

    #[test]
    fn broadcast_reaches_everyone_but_self() {
        let mut eps = Fabric::new(3, NetworkKind::high_speed_default()).into_endpoints();
        let mut c = eps.pop().unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.broadcast_control(Control::EndOfPhase { groups_seen: 7 }, 1.0);
        for ep in [&mut b, &mut c] {
            let msg = ep.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(
                msg.payload,
                Payload::Control(Control::EndOfPhase { groups_seen: 7 })
            );
        }
        assert!(a.try_recv().is_none(), "broadcast must not loop back");
        assert_eq!(a.stats().control_sent, 2);
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let mut eps = Fabric::new(1, NetworkKind::high_speed_default()).into_endpoints();
        let mut a = eps.pop().unwrap();
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn shared_bus_timestamps_reflect_contention() {
        let mut eps = Fabric::new(2, NetworkKind::SharedBus { ms_per_page: 2.0 }).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let t1 = a.send_data(1, DataKind::Raw, page_with(1), 0.0);
        let t2 = a.send_data(1, DataKind::Raw, page_with(1), 0.0);
        assert_eq!(t1, 2.0);
        assert_eq!(t2, 4.0, "second page waits for the bus");
        assert_eq!(b.recv().sent_at_ms, 2.0);
        assert_eq!(b.recv().sent_at_ms, 4.0);
    }

    #[test]
    fn cross_thread_delivery() {
        let mut eps = Fabric::new(2, NetworkKind::high_speed_default()).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                a.send_data(1, DataKind::Raw, page_with(i + 1), i as f64);
            }
            a.send_control(1, Control::EndOfStream, 10.0);
        });
        let mut pages = 0;
        loop {
            let msg = b.recv_timeout(Duration::from_secs(5)).unwrap();
            match msg.payload {
                Payload::Data { .. } => pages += 1,
                Payload::Control(Control::EndOfStream) => break,
                _ => panic!("unexpected control"),
            }
        }
        h.join().unwrap();
        assert_eq!(pages, 10);
    }
}
