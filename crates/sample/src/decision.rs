//! The crossover decision rule.

use std::fmt;

/// Which static algorithm the Sampling algorithm selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmChoice {
    /// Few groups: local aggregation compresses well.
    TwoPhase,
    /// Many groups: repartition raw tuples, aggregate once.
    Repartitioning,
}

impl fmt::Display for AlgorithmChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgorithmChoice::TwoPhase => write!(f, "Two Phase"),
            AlgorithmChoice::Repartitioning => write!(f, "Repartitioning"),
        }
    }
}

/// The §3.1 decision procedure:
///
/// ```text
/// sample the relation
/// find the number of groups in the sample
/// if (number of groups found < crossover threshold)
///     use Two Phase
/// else
///     use Repartitioning
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossoverRule {
    /// Group count at which Repartitioning takes over. "A reasonable
    /// number … may be, say, 10 times the number of processors" — a small
    /// number in the middle range where both algorithms perform well.
    pub threshold: u64,
}

impl CrossoverRule {
    /// The paper's default: `10 × N`.
    pub fn default_for(nodes: usize) -> Self {
        CrossoverRule {
            threshold: (nodes as u64) * 10,
        }
    }

    /// An explicit threshold (Figure 7 sweeps this: larger samples let
    /// one raise the threshold, trading sampling cost against the risk of
    /// using Repartitioning needlessly on a slow network).
    pub fn with_threshold(threshold: u64) -> Self {
        CrossoverRule { threshold }
    }

    /// Decide from the number of groups observed in the sample.
    pub fn decide(&self, groups_in_sample: u64) -> AlgorithmChoice {
        if groups_in_sample < self.threshold {
            AlgorithmChoice::TwoPhase
        } else {
            AlgorithmChoice::Repartitioning
        }
    }

    /// The sample size this rule needs (per §3.1's 10× guidance) on
    /// **each node**. We read the rule per node: each node samples its
    /// own partition, so every node's sample independently satisfies the
    /// occupancy bound, and the per-node overhead grows with the cluster
    /// (threshold ∝ N) — which is what gives the Sampling algorithm its
    /// sub-ideal scaleup in the paper's Figures 5–6 (§4: "the sampling
    /// overhead … is proportional to the number of processors").
    pub fn sample_size_per_node(&self) -> usize {
        crate::estimator::required_sample_size(self.threshold as usize)
    }

    /// The cluster-wide sample size.
    pub fn sample_size_total(&self, nodes: usize) -> usize {
        self.sample_size_per_node().saturating_mul(nodes.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threshold_is_ten_times_nodes() {
        assert_eq!(CrossoverRule::default_for(32).threshold, 320);
        assert_eq!(CrossoverRule::default_for(8).threshold, 80);
    }

    #[test]
    fn decision_boundaries() {
        let rule = CrossoverRule::with_threshold(100);
        assert_eq!(rule.decide(0), AlgorithmChoice::TwoPhase);
        assert_eq!(rule.decide(99), AlgorithmChoice::TwoPhase);
        assert_eq!(rule.decide(100), AlgorithmChoice::Repartitioning);
        assert_eq!(rule.decide(10_000), AlgorithmChoice::Repartitioning);
    }

    #[test]
    fn sample_sizes() {
        let rule = CrossoverRule::default_for(32);
        assert_eq!(rule.sample_size_per_node(), 3200);
        assert_eq!(rule.sample_size_total(32), 102_400);
        // Per-node size tracks the threshold (∝ N), the §4 property.
        assert!(
            CrossoverRule::default_for(8).sample_size_per_node()
                < CrossoverRule::default_for(32).sample_size_per_node()
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(AlgorithmChoice::TwoPhase.to_string(), "Two Phase");
        assert_eq!(
            AlgorithmChoice::Repartitioning.to_string(),
            "Repartitioning"
        );
    }
}
