//! # adaptagg-sample
//!
//! The estimation machinery of the Sampling algorithm (§3.1):
//!
//! * [`pagesample`] — page-level random sampling from a node's partition
//!   ("letting each node randomly sample relation pages on its local
//!   disk"), charging random-I/O (`rIO`) per sampled page;
//! * [`estimator`] — count distinct groups in the sample, which is a
//!   **lower bound** on the relation's group count, and the Erdős–Rényi
//!   sample-size rule ("the number of samples required is fairly small —
//!   about 10 times the crossover threshold");
//! * [`decision`] — the crossover rule: groups in sample below the
//!   threshold → Two Phase, otherwise → Repartitioning. The default
//!   threshold is "say, 10 times the number of processors".
//!
//! §3.1's point is that this is *much easier* than general distinct-count
//! estimation: the decision only needs "small or not small", with leeway
//! in the middle where both algorithms do fine.

pub mod decision;
pub mod estimator;
pub mod pagesample;

pub use decision::{AlgorithmChoice, CrossoverRule};
pub use estimator::{distinct_groups, required_sample_size};
pub use pagesample::sample_tuples;
