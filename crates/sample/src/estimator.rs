//! Group counting over samples.

use adaptagg_model::{AggQuery, GroupKey, ModelError, Value};
use std::collections::HashSet;

/// Count the distinct group keys in a sample. This is an exact count *of
/// the sample* and therefore a **lower bound** on the relation's group
/// count — exactly the property §3.1 relies on: if the sample already
/// shows at least `threshold` groups, the relation certainly has that
/// many and Repartitioning is safe.
pub fn distinct_groups(query: &AggQuery, sample: &[Vec<Value>]) -> Result<u64, ModelError> {
    let mut seen: HashSet<GroupKey> = HashSet::with_capacity(sample.len());
    for values in sample {
        seen.insert(query.key_of_values(values)?);
    }
    Ok(seen.len() as u64)
}

/// The sample size needed to decide a crossover threshold reliably.
///
/// §3.1, citing Erdős & Rényi's classical occupancy results: "It can be
/// shown that the number of samples required is fairly small (about 10
/// times the crossover threshold)". Intuition (coupon collector): if the
/// relation has at least `threshold` groups, a uniform sample of
/// `threshold · ln(threshold) ≲ 10·threshold` tuples will, with high
/// probability, contain at least `threshold` distinct ones — so observing
/// fewer is strong evidence the relation's group count is small.
pub fn required_sample_size(crossover_threshold: usize) -> usize {
    crossover_threshold.saturating_mul(10).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{AggFunc, AggSpec};

    fn query() -> AggQuery {
        AggQuery::new(vec![0], vec![AggSpec::over(AggFunc::Sum, 1)])
    }

    fn rows(groups: &[i64]) -> Vec<Vec<Value>> {
        groups
            .iter()
            .map(|&g| vec![Value::Int(g), Value::Int(1)])
            .collect()
    }

    #[test]
    fn counts_distinct_keys() {
        let sample = rows(&[1, 2, 2, 3, 1, 1]);
        assert_eq!(distinct_groups(&query(), &sample).unwrap(), 3);
    }

    #[test]
    fn empty_sample_has_zero_groups() {
        assert_eq!(distinct_groups(&query(), &[]).unwrap(), 0);
    }

    #[test]
    fn multi_column_keys() {
        let q = AggQuery::distinct(vec![0, 1]);
        let sample = vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(1), Value::Int(1)],
        ];
        assert_eq!(distinct_groups(&q, &sample).unwrap(), 2);
    }

    #[test]
    fn lower_bound_property() {
        // The sample's distinct count never exceeds the relation's.
        let relation: Vec<i64> = (0..1000).map(|i| i % 57).collect();
        let sample_rows = rows(&relation[..100]);
        let d = distinct_groups(&query(), &sample_rows).unwrap();
        assert!(d <= 57);
    }

    #[test]
    fn sample_size_rule() {
        assert_eq!(required_sample_size(320), 3200);
        assert_eq!(required_sample_size(0), 1);
        // The paper's example: 32 processors × 10 → threshold 320 →
        // ~3K samples, "less than 1% of any reasonably sized relation".
        assert!(required_sample_size(320) < 8_000_000 / 100);
    }

    #[test]
    fn bad_column_errors() {
        let q = AggQuery::distinct(vec![5]);
        assert!(distinct_groups(&q, &rows(&[1])).is_err());
    }
}
