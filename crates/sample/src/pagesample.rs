//! Page-level random sampling.
//!
//! "The sampling can be implemented by letting each node randomly sample
//! relation pages on its local disk. Page-oriented random sampling has
//! been shown to be quite effective if there is no correlation between
//! tuples in a page" (§3.1, citing \[Ses92\]). Our generators shuffle tuples
//! before placement, so the no-correlation premise holds.

use adaptagg_model::{CostEvent, CostTracker, Value};
use adaptagg_storage::{HeapFile, StorageError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Sample whole pages from `file` without replacement until at least
/// `min_tuples` tuples are collected (or the file is exhausted). Charges
/// one `rIO` per sampled page plus `t_r` per sampled tuple (the "select
/// cost" of getting tuples off the sampled pages is charged by the
/// caller's aggregation of the sample).
pub fn sample_tuples<T: CostTracker>(
    file: &HeapFile,
    min_tuples: usize,
    seed: u64,
    tracker: &mut T,
) -> Result<Vec<Vec<Value>>, StorageError> {
    let mut order: Vec<usize> = (0..file.page_count()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut out = Vec::with_capacity(min_tuples);
    for pi in order {
        if out.len() >= min_tuples {
            break;
        }
        let page = file.read_page_random(pi, tracker)?;
        for tuple in page.iter() {
            tracker.record(CostEvent::TupleRead, 1);
            out.push(tuple?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::CountingTracker;

    fn file_of(n: usize, page_bytes: usize) -> HeapFile {
        let tuples: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Int(i as i64)]).collect();
        HeapFile::from_tuples(page_bytes, tuples.iter().map(|t| t.as_slice())).unwrap()
    }

    #[test]
    fn samples_at_least_requested_tuples() {
        let file = file_of(1000, 128); // ~11 tuples per page
        let mut tr = CountingTracker::new();
        let sample = sample_tuples(&file, 50, 1, &mut tr).unwrap();
        assert!(sample.len() >= 50);
        assert!(sample.len() < 1000, "should not read the whole file");
        // rIO charged per page; pages sampled = ceil-ish of 50/11.
        let pages = tr.count(CostEvent::PageReadRand);
        assert!((5..=6).contains(&pages), "sampled {pages} pages");
        assert_eq!(tr.count(CostEvent::TupleRead) as usize, sample.len());
    }

    #[test]
    fn without_replacement_no_duplicate_tuples() {
        let file = file_of(200, 128);
        let mut tr = CountingTracker::new();
        let sample = sample_tuples(&file, 200, 2, &mut tr).unwrap();
        let distinct: std::collections::HashSet<i64> =
            sample.iter().map(|t| t[0].as_i64().unwrap()).collect();
        assert_eq!(distinct.len(), sample.len());
    }

    #[test]
    fn exhausts_small_files_gracefully() {
        let file = file_of(10, 128);
        let mut tr = CountingTracker::new();
        let sample = sample_tuples(&file, 1000, 3, &mut tr).unwrap();
        assert_eq!(sample.len(), 10);
    }

    #[test]
    fn empty_file_yields_empty_sample() {
        let file = HeapFile::new(128);
        let mut tr = CountingTracker::new();
        let sample = sample_tuples(&file, 10, 4, &mut tr).unwrap();
        assert!(sample.is_empty());
        assert_eq!(tr.count(CostEvent::PageReadRand), 0);
    }

    #[test]
    fn different_seeds_sample_different_pages() {
        let file = file_of(1000, 128);
        let mut tr = CountingTracker::new();
        let a = sample_tuples(&file, 20, 1, &mut tr).unwrap();
        let b = sample_tuples(&file, 20, 99, &mut tr).unwrap();
        assert_ne!(a, b);
    }
}
