//! # adaptagg-storage
//!
//! Paged storage for the simulated shared-nothing cluster:
//!
//! * [`Page`] — a fixed-capacity byte page of encoded tuples (4 KB disk
//!   pages by default; the network layer reuses the same type for 2 KB
//!   message blocks).
//! * [`HeapFile`] — an append-only sequence of pages: a node's partition of
//!   the base relation, a result file, or a spooled overflow bucket.
//! * [`SimDisk`] — one node's disk: named heap files plus the page-I/O
//!   event stream ([`adaptagg_model::CostEvent`]) that feeds the virtual
//!   clock. The *data* is held in memory (this is a simulation), but every
//!   page that the paper's algorithms would have read or written is
//!   counted, which is all the cost model needs.
//! * [`SpillFile`] — overflow-bucket spooling for the memory-bounded hash
//!   table (write tuples out, seal pages, read them back bucket-by-bucket).
//!
//! Charging convention (see `adaptagg_model::event`): this crate charges
//! **page-level I/O only**; per-tuple CPU costs are charged by the compute
//! layers.

pub mod disk;
pub mod error;
pub mod heapfile;
pub mod page;
pub mod persist;
pub mod pool;
pub mod spill;

pub use disk::{IoCounters, SimDisk};
pub use error::StorageError;
pub use heapfile::HeapFile;
pub use page::{Page, PageCursor, PageIter, StripView};
pub use pool::PagePool;
pub use spill::SpillFile;
