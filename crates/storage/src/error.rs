//! Storage errors.

use adaptagg_model::ModelError;
use std::fmt;

/// Errors from the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A tuple was larger than a whole page and can never be stored.
    TupleTooLarge {
        /// Encoded tuple size in bytes.
        tuple_bytes: usize,
        /// Page capacity in bytes.
        page_bytes: usize,
    },
    /// A named file was not found on the disk.
    NoSuchFile(String),
    /// A page index was out of range for a file.
    PageOutOfRange {
        /// Requested page index.
        page: usize,
        /// Number of pages in the file.
        pages: usize,
    },
    /// A page's bytes failed to decode.
    Model(ModelError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TupleTooLarge {
                tuple_bytes,
                page_bytes,
            } => write!(
                f,
                "tuple of {tuple_bytes} B cannot fit a {page_bytes} B page"
            ),
            StorageError::NoSuchFile(name) => write!(f, "no such file: {name}"),
            StorageError::PageOutOfRange { page, pages } => {
                write!(f, "page {page} out of range (file has {pages} pages)")
            }
            StorageError::Model(e) => write!(f, "decode failure: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for StorageError {
    fn from(e: ModelError) -> Self {
        StorageError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = StorageError::TupleTooLarge {
            tuple_bytes: 9000,
            page_bytes: 4096,
        };
        assert!(e.to_string().contains("9000"));
        assert!(StorageError::NoSuchFile("r".into()).to_string().contains("r"));
        let e = StorageError::PageOutOfRange { page: 9, pages: 3 };
        assert!(e.to_string().contains("page 9"));
    }

    #[test]
    fn model_error_converts_and_sources() {
        use std::error::Error;
        let e: StorageError = ModelError::Corrupt("bad").into();
        assert!(e.source().is_some());
    }
}
