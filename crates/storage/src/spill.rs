//! Overflow-bucket spill files.
//!
//! When a memory-bounded hash table overflows (paper §2, step 2), tuples of
//! groups that did not fit are hash-partitioned into buckets and "spooled
//! to disk". A [`SpillFile`] is one such bucket: an append buffer that
//! seals full pages (charging a sequential page write each) and is later
//! drained page-by-page (charging sequential page reads).
//!
//! Per the crate's charging convention, only page I/O is charged here; the
//! hash-aggregation layer charges the per-tuple `t_w`/`t_r` costs around
//! its calls.

use crate::error::StorageError;
use crate::page::Page;
use adaptagg_model::{CostEvent, CostTracker, Value};

/// One spill bucket.
#[derive(Debug)]
pub struct SpillFile {
    page_bytes: usize,
    sealed: Vec<Page>,
    open: Page,
    tuple_count: usize,
}

impl SpillFile {
    /// An empty bucket with the given page capacity.
    pub fn new(page_bytes: usize) -> Self {
        SpillFile {
            page_bytes,
            sealed: Vec::new(),
            open: Page::new(page_bytes),
            tuple_count: 0,
        }
    }

    /// Tuples spooled so far.
    pub fn tuple_count(&self) -> usize {
        self.tuple_count
    }

    /// Pages written to disk so far (sealed pages only; the open page is
    /// still in the write buffer).
    pub fn sealed_pages(&self) -> usize {
        self.sealed.len()
    }

    /// Whether nothing was ever spooled.
    pub fn is_empty(&self) -> bool {
        self.tuple_count == 0
    }

    /// Spool one tuple, charging a page write whenever a page seals.
    pub fn spool<T: CostTracker>(
        &mut self,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<(), StorageError> {
        if !self.open.try_push(values)? {
            tracker.record(CostEvent::PageWriteSeq, 1);
            let full = std::mem::replace(&mut self.open, Page::new(self.page_bytes));
            self.sealed.push(full);
            if !self.open.try_push(values)? {
                unreachable!("fresh spill page refused a fitting tuple");
            }
        }
        self.tuple_count += 1;
        Ok(())
    }

    /// Finish writing: seal the open partial page (charging its write) so
    /// the bucket can be drained.
    pub fn finish<T: CostTracker>(&mut self, tracker: &mut T) {
        if !self.open.is_empty() {
            tracker.record(CostEvent::PageWriteSeq, 1);
            let last = std::mem::replace(&mut self.open, Page::new(self.page_bytes));
            self.sealed.push(last);
        }
    }

    /// Drain the bucket: read every page back (charging sequential reads)
    /// and hand each tuple to `consume` as a borrowed slice (decoded into
    /// one reused scratch vector), along with the tracker so the consumer
    /// can charge its own per-tuple costs. Consumes the bucket.
    pub fn drain<T, F>(mut self, tracker: &mut T, mut consume: F) -> Result<usize, StorageError>
    where
        T: CostTracker,
        F: FnMut(&mut T, &[Value]) -> Result<(), StorageError>,
    {
        self.finish(tracker);
        let mut n = 0usize;
        let mut scratch: Vec<Value> = Vec::new();
        for page in &self.sealed {
            tracker.record(CostEvent::PageReadSeq, 1);
            let mut cursor = page.cursor();
            while cursor.next_into(&mut scratch)? {
                consume(tracker, &scratch)?;
                n += 1;
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{CountingTracker, Value};

    fn t(i: i64) -> Vec<Value> {
        vec![Value::Int(i)] // 2 + 1 + 8 = 11 bytes
    }

    #[test]
    fn spool_seals_full_pages_with_write_charges() {
        let mut s = SpillFile::new(32); // 2 tuples of 11 B per page
        let mut tr = CountingTracker::new();
        for i in 0..5 {
            s.spool(&t(i), &mut tr).unwrap();
        }
        assert_eq!(s.tuple_count(), 5);
        assert_eq!(s.sealed_pages(), 2);
        assert_eq!(tr.count(CostEvent::PageWriteSeq), 2);
        s.finish(&mut tr);
        assert_eq!(s.sealed_pages(), 3);
        assert_eq!(tr.count(CostEvent::PageWriteSeq), 3);
    }

    #[test]
    fn finish_twice_is_idempotent() {
        let mut s = SpillFile::new(32);
        let mut tr = CountingTracker::new();
        s.spool(&t(0), &mut tr).unwrap();
        s.finish(&mut tr);
        s.finish(&mut tr);
        assert_eq!(tr.count(CostEvent::PageWriteSeq), 1);
        assert_eq!(s.sealed_pages(), 1);
    }

    #[test]
    fn drain_reads_back_everything_in_order_with_read_charges() {
        let mut s = SpillFile::new(32);
        let mut tr = CountingTracker::new();
        for i in 0..5 {
            s.spool(&t(i), &mut tr).unwrap();
        }
        let mut seen = Vec::new();
        let n = s
            .drain(&mut tr, |_t, vals| {
                seen.push(vals[0].as_i64().unwrap());
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        // 3 pages written (2 sealed + 1 finish), 3 read back.
        assert_eq!(tr.count(CostEvent::PageWriteSeq), 3);
        assert_eq!(tr.count(CostEvent::PageReadSeq), 3);
    }

    #[test]
    fn empty_bucket_drains_nothing_and_charges_nothing() {
        let s = SpillFile::new(64);
        let mut tr = CountingTracker::new();
        let n = s.drain(&mut tr, |_t, _| Ok(())).unwrap();
        assert_eq!(n, 0);
        assert_eq!(tr.count(CostEvent::PageWriteSeq), 0);
        assert_eq!(tr.count(CostEvent::PageReadSeq), 0);
    }

    #[test]
    fn write_read_page_symmetry() {
        // The paper's overflow term is "an extra read/write" per spilled
        // page: pages written must equal pages read back.
        let mut s = SpillFile::new(64);
        let mut tr = CountingTracker::new();
        for i in 0..100 {
            s.spool(&t(i), &mut tr).unwrap();
        }
        s.drain(&mut tr, |_t, _| Ok(())).unwrap();
        assert_eq!(
            tr.count(CostEvent::PageWriteSeq),
            tr.count(CostEvent::PageReadSeq)
        );
    }
}
