//! Fixed-capacity pages of tuples, laid out as **column strips**.
//!
//! A page holds one contiguous strip per column: an `Int`-only strip is a
//! plain `Vec<i64>` (the validity-free fixed-width fast path batch
//! operators ride), and a strip that has seen any other type holds
//! general [`Value`] cells. The byte budget is still accounted in the
//! [`adaptagg_model::encode`] wire format — `try_push` admits exactly the
//! rows the old row-major byte page admitted, so page-boundary and cost
//! decisions are unchanged — and [`Page::encode_into`] /
//! [`Page::from_raw`] convert to/from that format at the disk and network
//! edges. The same type serves 4 KB disk pages and 2 KB network message
//! blocks — only the capacity differs.
//!
//! Batch consumers read whole columns through [`Page::column`]
//! ([`StripView`]); row-at-a-time consumers (sort, sample, spill replay)
//! keep the [`Page::iter`] / [`Page::cursor`] compatibility path, which
//! reconstructs rows from the strips.

use crate::error::StorageError;
use adaptagg_model::{decode_tuple_into, encode_value, encoded_len, Value};

/// A page of tuples with a byte-capacity bound, stored column-wise.
#[derive(Debug, Clone)]
pub struct Page {
    capacity: usize,
    /// Wire-format bytes the rows occupy (what `capacity` bounds).
    bytes_used: usize,
    tuples: u32,
    /// Smallest row arity on the page (0 when empty): columns `< min`
    /// are dense strips with no pad cells, so `column` is O(1).
    min_arity: u16,
    /// Largest row arity on the page (0 when empty); `min == max` ⇔
    /// arity-uniform.
    max_arity: u16,
    /// Per-row arity (the wire `arity:u16` header), in row order.
    arities: Vec<u16>,
    /// Column strips. Strip `j` is padded lazily: it holds one cell per
    /// row only up to the last row whose arity exceeds `j`; pad cells for
    /// shorter rows are never read (row reconstruction stops at the
    /// row's arity).
    cols: Vec<ColumnStrip>,
}

/// One column's cells. `is_int` selects the fixed-width fast path; the
/// first non-`Int` cell promotes the strip to general values. Both
/// buffers are kept so a pooled page retains its capacity across
/// `clear`/refill cycles.
#[derive(Debug, Clone)]
struct ColumnStrip {
    ints: Vec<i64>,
    values: Vec<Value>,
    is_int: bool,
}

impl ColumnStrip {
    fn new() -> Self {
        ColumnStrip {
            ints: Vec::new(),
            values: Vec::new(),
            is_int: true,
        }
    }

    fn len(&self) -> usize {
        if self.is_int {
            self.ints.len()
        } else {
            self.values.len()
        }
    }

    /// Extend the strip with pad cells up to `rows` entries (rows whose
    /// arity does not reach this column).
    fn pad_to(&mut self, rows: usize) {
        if self.is_int {
            if self.ints.len() < rows {
                self.ints.resize(rows, 0);
            }
        } else if self.values.len() < rows {
            self.values.resize(rows, Value::Null);
        }
    }

    fn push(&mut self, v: &Value) {
        if self.is_int {
            if let Value::Int(x) = v {
                self.ints.push(*x);
                return;
            }
            self.promote();
        }
        self.values.push(v.clone());
    }

    /// Rewiden the `Int` fast path into general cells (first non-`Int`
    /// value, including pads-turned-`Null` never happens: pads stay 0).
    fn promote(&mut self) {
        debug_assert!(self.values.is_empty());
        self.values.extend(self.ints.iter().map(|&x| Value::Int(x)));
        self.ints.clear();
        self.is_int = false;
    }

    fn clear(&mut self) {
        self.ints.clear();
        self.values.clear();
        self.is_int = true;
    }

    fn get(&self, r: usize) -> Value {
        if self.is_int {
            Value::Int(self.ints[r])
        } else {
            self.values[r].clone()
        }
    }

    fn encode_cell(&self, r: usize, out: &mut Vec<u8>) {
        if self.is_int {
            encode_value(&Value::Int(self.ints[r]), out);
        } else {
            encode_value(&self.values[r], out);
        }
    }

    /// Logical equality of cell `r` across strips, regardless of which
    /// representation (fast-path ints vs general values) each strip uses.
    fn cell_eq(&self, other: &ColumnStrip, r: usize) -> bool {
        match (self.is_int, other.is_int) {
            (true, true) => self.ints[r] == other.ints[r],
            (true, false) => matches!(other.values[r], Value::Int(x) if x == self.ints[r]),
            (false, true) => matches!(self.values[r], Value::Int(x) if x == other.ints[r]),
            (false, false) => self.values[r] == other.values[r],
        }
    }
}

/// A borrowed whole-column view for batch operators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StripView<'a> {
    /// Validity-free fixed-width fast path: every cell is an `Int`.
    Ints(&'a [i64]),
    /// General cells (mixed types, strings, nulls).
    Values(&'a [Value]),
}

impl Page {
    /// An empty page with the given byte capacity.
    pub fn new(capacity: usize) -> Self {
        Page {
            capacity,
            bytes_used: 0,
            tuples: 0,
            min_arity: 0,
            max_arity: 0,
            arities: Vec::new(),
            cols: Vec::new(),
        }
    }

    /// Byte capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Wire-format bytes currently used.
    pub fn bytes_used(&self) -> usize {
        self.bytes_used
    }

    /// Number of tuples on the page.
    pub fn tuple_count(&self) -> usize {
        self.tuples as usize
    }

    /// Whether the page holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// Whether a tuple of `n` encoded bytes would fit.
    pub fn fits(&self, n: usize) -> bool {
        self.bytes_used + n <= self.capacity
    }

    /// Try to append a tuple. Returns `Ok(true)` if stored, `Ok(false)` if
    /// the page is full (caller seals it and starts a new one), or an error
    /// if the tuple can never fit *any* page of this capacity.
    pub fn try_push(&mut self, values: &[Value]) -> Result<bool, StorageError> {
        // Size in the wire format first: admission decisions must stay
        // byte-identical to the row-major layout this replaced.
        let n = encoded_len(values);
        if self.bytes_used + n > self.capacity {
            if n > self.capacity {
                return Err(StorageError::TupleTooLarge {
                    tuple_bytes: n,
                    page_bytes: self.capacity,
                });
            }
            return Ok(false);
        }
        let arity = u16::try_from(values.len()).expect("tuple arity exceeds u16");
        let row = self.tuples as usize;
        while self.cols.len() < values.len() {
            self.cols.push(ColumnStrip::new());
        }
        for (j, v) in values.iter().enumerate() {
            let strip = &mut self.cols[j];
            strip.pad_to(row);
            strip.push(v);
        }
        self.min_arity = if self.tuples == 0 { arity } else { self.min_arity.min(arity) };
        self.max_arity = self.max_arity.max(arity);
        self.arities.push(arity);
        self.bytes_used += n;
        self.tuples += 1;
        Ok(true)
    }

    /// The arity shared by every row, when the page is non-empty and
    /// arity-uniform — the precondition for whole-page batch operators.
    /// O(1): the min/max arity are maintained on push.
    pub fn uniform_arity(&self) -> Option<usize> {
        (self.tuples > 0 && self.min_arity == self.max_arity).then_some(self.min_arity as usize)
    }

    /// Column `j` as a contiguous strip covering every row. `None` when
    /// any row lacks the column (a padded strip would leak pad cells as
    /// data) — callers fall back to the row-at-a-time cursor. O(1): hash
    /// probes compare keys against strips through this on every row.
    pub fn column(&self, j: usize) -> Option<StripView<'_>> {
        if self.tuples == 0 || j >= usize::from(self.min_arity) {
            return None;
        }
        let c = self.cols.get(j)?;
        debug_assert_eq!(c.len(), self.tuples as usize);
        Some(if c.is_int {
            StripView::Ints(&c.ints)
        } else {
            StripView::Values(&c.values)
        })
    }

    /// Iterate over the page's tuples, materializing each row from the
    /// strips.
    pub fn iter(&self) -> PageIter<'_> {
        PageIter { page: self, row: 0 }
    }

    /// A cursor materializing tuples into a caller-owned scratch vector —
    /// the allocation-reusing counterpart of [`Page::iter`] for hot paths.
    pub fn cursor(&self) -> PageCursor<'_> {
        PageCursor { page: self, row: 0 }
    }

    /// Decode all tuples into vectors (convenience for tests and stores).
    pub fn decode_all(&self) -> Result<Vec<Vec<Value>>, StorageError> {
        self.iter().collect()
    }

    /// Clear the page for reuse (strip capacities retained — the
    /// "workhorse collection" pattern: exchange operators and the page
    /// pool reuse pages without reallocating).
    pub fn clear(&mut self) {
        for c in &mut self.cols {
            c.clear();
        }
        self.arities.clear();
        self.bytes_used = 0;
        self.tuples = 0;
        self.min_arity = 0;
        self.max_arity = 0;
    }

    /// Append the page's rows in the row-major wire encoding (persistence
    /// and network frames). Writes exactly [`Page::bytes_used`] bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.bytes_used);
        for r in 0..self.tuples as usize {
            let arity = self.arities[r];
            out.extend_from_slice(&arity.to_le_bytes());
            for j in 0..arity as usize {
                self.cols[j].encode_cell(r, out);
            }
        }
    }

    /// Rebuild a page from wire-format bytes, verifying that they decode
    /// to exactly `tuples` tuples spanning the whole buffer (persistence).
    pub fn from_raw(capacity: usize, data: Vec<u8>, tuples: u32) -> Result<Self, StorageError> {
        if data.len() > capacity {
            return Err(StorageError::TupleTooLarge {
                tuple_bytes: data.len(),
                page_bytes: capacity,
            });
        }
        let mut page = Page::new(capacity);
        let mut scratch = Vec::new();
        let mut pos = 0usize;
        for _ in 0..tuples {
            let used = decode_tuple_into(&data[pos..], &mut scratch)
                .map_err(StorageError::Model)?;
            pos += used;
            // Cannot refuse: the whole buffer already fits the capacity.
            page.try_push(&scratch)?;
        }
        if pos != data.len() {
            return Err(StorageError::Model(adaptagg_model::ModelError::Corrupt(
                "page bytes longer than its tuples",
            )));
        }
        Ok(page)
    }
}

impl PartialEq for Page {
    /// Logical equality: same capacity, same rows. Strip representation
    /// (fast-path ints vs promoted values) and retained-but-cleared strip
    /// buffers do not participate, so a pooled page refilled with the
    /// same rows equals a fresh one.
    fn eq(&self, other: &Self) -> bool {
        if self.capacity != other.capacity
            || self.tuples != other.tuples
            || self.bytes_used != other.bytes_used
            || self.arities != other.arities
        {
            return false;
        }
        for r in 0..self.tuples as usize {
            for j in 0..self.arities[r] as usize {
                if !self.cols[j].cell_eq(&other.cols[j], r) {
                    return false;
                }
            }
        }
        true
    }
}

impl Eq for Page {}

/// Iterator over a page's tuples.
#[derive(Debug)]
pub struct PageIter<'a> {
    page: &'a Page,
    row: usize,
}

impl Iterator for PageIter<'_> {
    type Item = Result<Vec<Value>, StorageError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.row >= self.page.tuples as usize {
            return None;
        }
        let r = self.row;
        self.row += 1;
        let arity = self.page.arities[r] as usize;
        let mut out = Vec::with_capacity(arity);
        for j in 0..arity {
            out.push(self.page.cols[j].get(r));
        }
        Some(Ok(out))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.page.tuples as usize - self.row;
        (left, Some(left))
    }
}

/// Scratch-reuse cursor over a page's tuples (see [`Page::cursor`]).
#[derive(Debug)]
pub struct PageCursor<'a> {
    page: &'a Page,
    row: usize,
}

impl PageCursor<'_> {
    /// Materialize the next tuple into `out` (cleared first, allocation
    /// reused). Returns `Ok(false)` when the page is exhausted.
    pub fn next_into(&mut self, out: &mut Vec<Value>) -> Result<bool, StorageError> {
        self.next_select_into(None, out)
    }

    /// [`PageCursor::next_into`], materializing only the columns flagged
    /// in `select`; unselected columns become [`Value::Null`]
    /// placeholders so column indices and the arity stay stable (the
    /// semantics of [`adaptagg_model::decode_tuple_select_into`]).
    pub fn next_select_into(
        &mut self,
        select: Option<&[bool]>,
        out: &mut Vec<Value>,
    ) -> Result<bool, StorageError> {
        if self.row >= self.page.tuples as usize {
            return Ok(false);
        }
        let r = self.row;
        self.row += 1;
        out.clear();
        let arity = self.page.arities[r] as usize;
        out.reserve(arity);
        for j in 0..arity {
            let wanted = select.is_none_or(|s| s.get(j).copied().unwrap_or(false));
            out.push(if wanted {
                self.page.cols[j].get(r)
            } else {
                Value::Null
            });
        }
        Ok(true)
    }

    /// Tuples not yet materialized.
    pub fn remaining(&self) -> usize {
        self.page.tuples as usize - self.row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::Value;

    fn ints(n: i64) -> Vec<Value> {
        vec![Value::Int(n), Value::Int(n * 2)]
    }

    #[test]
    fn push_until_full_then_refuse() {
        let mut p = Page::new(64);
        let mut stored = 0;
        while p.try_push(&ints(stored)).unwrap() {
            stored += 1;
        }
        // Each tuple is 2 + 2*(1+8) = 20 bytes; 3 fit in 64.
        assert_eq!(stored, 3);
        assert_eq!(p.tuple_count(), 3);
        assert_eq!(p.bytes_used(), 60);
        assert!(!p.fits(20));
    }

    #[test]
    fn failed_push_rolls_back_without_a_torn_row() {
        // Capacity leaves exactly 19 free bytes after three 20-byte
        // tuples: the next push misses by one byte and must refuse with
        // no partial state — no strip cells, no count bump, no bytes.
        let mut p = Page::new(79);
        for i in 0..3 {
            assert!(p.try_push(&ints(i)).unwrap());
        }
        assert_eq!(p.bytes_used(), 60);
        assert!(!p.try_push(&ints(99)).unwrap(), "one byte short must refuse");
        assert_eq!(p.tuple_count(), 3);
        assert_eq!(p.bytes_used(), 60, "rolled back to the pre-push length");
        let decoded = p.decode_all().unwrap();
        assert_eq!(decoded.len(), 3);
        for (i, t) in decoded.iter().enumerate() {
            assert_eq!(t, &ints(i as i64), "no torn row after rollback");
        }
        // A smaller tuple still fits in the remaining 19 bytes.
        assert!(p.try_push(&[Value::Int(7)]).unwrap());
        assert_eq!(p.tuple_count(), 4);
        assert_eq!(p.decode_all().unwrap()[3], vec![Value::Int(7)]);
    }

    #[test]
    fn oversized_tuple_is_an_error_not_a_full_page() {
        let mut p = Page::new(16);
        let big = vec![Value::Str("x".repeat(100).into())];
        assert!(matches!(
            p.try_push(&big),
            Err(StorageError::TupleTooLarge { .. })
        ));
    }

    #[test]
    fn iteration_round_trips_in_order() {
        let mut p = Page::new(4096);
        for i in 0..50 {
            assert!(p.try_push(&ints(i)).unwrap());
        }
        let decoded = p.decode_all().unwrap();
        assert_eq!(decoded.len(), 50);
        for (i, t) in decoded.iter().enumerate() {
            assert_eq!(t[0], Value::Int(i as i64));
        }
        assert_eq!(p.iter().size_hint(), (50, Some(50)));
    }

    #[test]
    fn cursor_matches_iter_and_reuses_scratch() {
        let mut p = Page::new(4096);
        for i in 0..40 {
            p.try_push(&ints(i)).unwrap();
        }
        let via_iter = p.decode_all().unwrap();
        let mut via_cursor = Vec::new();
        let mut scratch = Vec::new();
        let mut cursor = p.cursor();
        while cursor.next_into(&mut scratch).unwrap() {
            via_cursor.push(scratch.clone());
        }
        assert_eq!(via_cursor, via_iter);
        assert_eq!(cursor.remaining(), 0);
        assert!(!cursor.next_into(&mut scratch).unwrap(), "stays exhausted");
    }

    #[test]
    fn cursor_select_skips_columns() {
        let mut p = Page::new(4096);
        p.try_push(&[Value::Int(1), Value::Str("pad".into())]).unwrap();
        let mut scratch = Vec::new();
        let mut cursor = p.cursor();
        assert!(cursor.next_select_into(Some(&[true, false]), &mut scratch).unwrap());
        assert_eq!(scratch, vec![Value::Int(1), Value::Null]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut p = Page::new(128);
        p.try_push(&ints(1)).unwrap();
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.bytes_used(), 0);
        assert!(p.try_push(&ints(2)).unwrap());
    }

    #[test]
    fn cleared_page_equals_fresh_page() {
        let mut p = Page::new(128);
        p.try_push(&[Value::Str("s".into()), Value::Int(1)]).unwrap();
        p.clear();
        assert_eq!(p, Page::new(128), "retained strip buffers stay invisible");
        p.try_push(&ints(2)).unwrap();
        let mut q = Page::new(128);
        q.try_push(&ints(2)).unwrap();
        assert_eq!(p, q, "refilled pooled page equals fresh page");
    }

    #[test]
    fn empty_page_iterates_nothing() {
        let p = Page::new(4096);
        assert_eq!(p.iter().count(), 0);
    }

    #[test]
    fn mixed_width_tuples() {
        let mut p = Page::new(4096);
        p.try_push(&[Value::Null]).unwrap();
        p.try_push(&[Value::Str("abc".into()), Value::Float(1.5)]).unwrap();
        let all = p.decode_all().unwrap();
        assert_eq!(all[0], vec![Value::Null]);
        assert_eq!(all[1], vec![Value::Str("abc".into()), Value::Float(1.5)]);
    }

    #[test]
    fn uniform_arity_detects_ragged_pages() {
        let mut p = Page::new(4096);
        assert_eq!(p.uniform_arity(), None, "empty page has no arity");
        p.try_push(&ints(1)).unwrap();
        p.try_push(&ints(2)).unwrap();
        assert_eq!(p.uniform_arity(), Some(2));
        p.try_push(&[Value::Int(3)]).unwrap();
        assert_eq!(p.uniform_arity(), None);
    }

    #[test]
    fn column_strips_expose_int_fast_path() {
        let mut p = Page::new(4096);
        for i in 0..10 {
            p.try_push(&[Value::Int(i), Value::Str(format!("s{i}").into())])
                .unwrap();
        }
        match p.column(0) {
            Some(StripView::Ints(xs)) => {
                assert_eq!(xs, (0..10).collect::<Vec<i64>>().as_slice())
            }
            other => panic!("expected Int strip, got {other:?}"),
        }
        match p.column(1) {
            Some(StripView::Values(vs)) => {
                assert_eq!(vs[3], Value::Str("s3".into()));
                assert_eq!(vs.len(), 10);
            }
            other => panic!("expected Value strip, got {other:?}"),
        }
        assert!(p.column(2).is_none(), "no such column");
    }

    #[test]
    fn int_strip_promotes_on_first_non_int_cell() {
        let mut p = Page::new(4096);
        p.try_push(&[Value::Int(1)]).unwrap();
        p.try_push(&[Value::Float(2.5)]).unwrap();
        match p.column(0) {
            Some(StripView::Values(vs)) => {
                assert_eq!(vs, &[Value::Int(1), Value::Float(2.5)]);
            }
            other => panic!("expected promoted strip, got {other:?}"),
        }
    }

    #[test]
    fn ragged_columns_are_not_dense_strips() {
        let mut p = Page::new(4096);
        p.try_push(&[Value::Int(1)]).unwrap();
        p.try_push(&[Value::Int(2), Value::Int(3)]).unwrap();
        // Column 1 only covers row 1: not a dense strip.
        assert!(p.column(1).is_none());
        // Column 0 covers both rows.
        assert!(matches!(p.column(0), Some(StripView::Ints(_))));
        // Row reconstruction still yields the original ragged rows.
        let all = p.decode_all().unwrap();
        assert_eq!(all[0], vec![Value::Int(1)]);
        assert_eq!(all[1], vec![Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn encode_into_round_trips_through_from_raw() {
        let mut p = Page::new(4096);
        p.try_push(&[Value::Int(1), Value::Str("a".into())]).unwrap();
        p.try_push(&[Value::Null, Value::Float(-0.5)]).unwrap();
        let mut bytes = Vec::new();
        p.encode_into(&mut bytes);
        assert_eq!(bytes.len(), p.bytes_used());
        let q = Page::from_raw(4096, bytes, p.tuple_count() as u32).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.decode_all().unwrap(), p.decode_all().unwrap());
    }

    #[test]
    fn from_raw_rejects_trailing_and_truncated_bytes() {
        let mut p = Page::new(4096);
        p.try_push(&ints(1)).unwrap();
        let mut bytes = Vec::new();
        p.encode_into(&mut bytes);
        let mut long = bytes.clone();
        long.push(0);
        assert!(Page::from_raw(4096, long, 1).is_err(), "trailing bytes");
        let short = bytes[..bytes.len() - 1].to_vec();
        assert!(Page::from_raw(4096, short, 1).is_err(), "truncated");
        assert!(
            Page::from_raw(4, bytes, 1).is_err(),
            "bytes exceeding capacity"
        );
    }
}
