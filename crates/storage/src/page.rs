//! Fixed-capacity pages of encoded tuples.
//!
//! A page is a byte buffer plus a tuple count. Tuples are stored in the
//! [`adaptagg_model::encode`] wire format, back to back. The same type
//! serves 4 KB disk pages and 2 KB network message blocks — only the
//! capacity differs.

use crate::error::StorageError;
use adaptagg_model::{decode_tuple, decode_tuple_select_into, encode_tuple, Value};

/// A page of encoded tuples with a byte-capacity bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    capacity: usize,
    data: Vec<u8>,
    tuples: u32,
}

impl Page {
    /// An empty page with the given byte capacity.
    pub fn new(capacity: usize) -> Self {
        Page {
            capacity,
            data: Vec::new(),
            tuples: 0,
        }
    }

    /// Byte capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently used.
    pub fn bytes_used(&self) -> usize {
        self.data.len()
    }

    /// Number of tuples on the page.
    pub fn tuple_count(&self) -> usize {
        self.tuples as usize
    }

    /// Whether the page holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// Whether a tuple of `n` encoded bytes would fit.
    pub fn fits(&self, n: usize) -> bool {
        self.data.len() + n <= self.capacity
    }

    /// Try to append a tuple. Returns `Ok(true)` if stored, `Ok(false)` if
    /// the page is full (caller seals it and starts a new one), or an error
    /// if the tuple can never fit *any* page of this capacity.
    pub fn try_push(&mut self, values: &[Value]) -> Result<bool, StorageError> {
        // Encode optimistically (one pass over the values) and roll back if
        // the tuple overflows the capacity — sealing is the rare case, so
        // the common path never walks the values twice.
        let start = self.data.len();
        let n = encode_tuple(values, &mut self.data);
        if start + n > self.capacity {
            self.data.truncate(start);
            if n > self.capacity {
                return Err(StorageError::TupleTooLarge {
                    tuple_bytes: n,
                    page_bytes: self.capacity,
                });
            }
            return Ok(false);
        }
        self.tuples += 1;
        Ok(true)
    }

    /// Iterate over the page's tuples, decoding lazily.
    pub fn iter(&self) -> PageIter<'_> {
        PageIter {
            data: &self.data,
            pos: 0,
            remaining: self.tuples,
        }
    }

    /// A cursor decoding tuples into a caller-owned scratch vector — the
    /// allocation-free counterpart of [`Page::iter`] for hot paths.
    pub fn cursor(&self) -> PageCursor<'_> {
        PageCursor {
            data: &self.data,
            pos: 0,
            remaining: self.tuples,
        }
    }

    /// Decode all tuples into vectors (convenience for tests and stores).
    pub fn decode_all(&self) -> Result<Vec<Vec<Value>>, StorageError> {
        self.iter().collect()
    }

    /// Clear the page for reuse (capacity retained — the "workhorse
    /// collection" pattern: exchange operators reuse one page per
    /// destination).
    pub fn clear(&mut self) {
        self.data.clear();
        self.tuples = 0;
    }

    /// The raw encoded bytes (persistence).
    pub fn raw_data(&self) -> &[u8] {
        &self.data
    }

    /// Rebuild a page from its raw parts, verifying that the bytes decode
    /// to exactly `tuples` tuples of `data.len()` bytes (persistence).
    pub fn from_raw(capacity: usize, data: Vec<u8>, tuples: u32) -> Result<Self, StorageError> {
        if data.len() > capacity {
            return Err(StorageError::TupleTooLarge {
                tuple_bytes: data.len(),
                page_bytes: capacity,
            });
        }
        let page = Page {
            capacity,
            data,
            tuples,
        };
        // `iter` stops after `tuples` decoded rows; require that they
        // decode cleanly and span the whole buffer (no trailing garbage).
        let mut pos = 0usize;
        for t in page.iter() {
            pos += adaptagg_model::encoded_len(&t?);
        }
        if pos != page.data.len() {
            return Err(StorageError::Model(adaptagg_model::ModelError::Corrupt(
                "page bytes longer than its tuples",
            )));
        }
        Ok(page)
    }
}

/// Iterator over a page's tuples.
#[derive(Debug)]
pub struct PageIter<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: u32,
}

impl Iterator for PageIter<'_> {
    type Item = Result<Vec<Value>, StorageError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match decode_tuple(&self.data[self.pos..]) {
            Ok((values, used)) => {
                self.pos += used;
                Some(Ok(values))
            }
            Err(e) => {
                self.remaining = 0;
                Some(Err(e.into()))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

/// Scratch-reuse cursor over a page's tuples (see [`Page::cursor`]).
#[derive(Debug)]
pub struct PageCursor<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: u32,
}

impl PageCursor<'_> {
    /// Decode the next tuple into `out` (cleared first, allocation
    /// reused). Returns `Ok(false)` when the page is exhausted.
    pub fn next_into(&mut self, out: &mut Vec<Value>) -> Result<bool, StorageError> {
        self.next_select_into(None, out)
    }

    /// [`PageCursor::next_into`], materializing only the columns flagged
    /// in `select` (see [`adaptagg_model::decode_tuple_select_into`]).
    pub fn next_select_into(
        &mut self,
        select: Option<&[bool]>,
        out: &mut Vec<Value>,
    ) -> Result<bool, StorageError> {
        if self.remaining == 0 {
            return Ok(false);
        }
        self.remaining -= 1;
        match decode_tuple_select_into(&self.data[self.pos..], select, out) {
            Ok(used) => {
                self.pos += used;
                Ok(true)
            }
            Err(e) => {
                self.remaining = 0;
                Err(e.into())
            }
        }
    }

    /// Tuples not yet decoded.
    pub fn remaining(&self) -> usize {
        self.remaining as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::Value;

    fn ints(n: i64) -> Vec<Value> {
        vec![Value::Int(n), Value::Int(n * 2)]
    }

    #[test]
    fn push_until_full_then_refuse() {
        let mut p = Page::new(64);
        let mut stored = 0;
        while p.try_push(&ints(stored)).unwrap() {
            stored += 1;
        }
        // Each tuple is 2 + 2*(1+8) = 20 bytes; 3 fit in 64.
        assert_eq!(stored, 3);
        assert_eq!(p.tuple_count(), 3);
        assert_eq!(p.bytes_used(), 60);
        assert!(!p.fits(20));
    }

    #[test]
    fn failed_push_rolls_back_without_a_torn_row() {
        // Capacity leaves exactly 19 free bytes after three 20-byte
        // tuples: the next push misses by one byte. The optimistic encode
        // must truncate completely — no partial bytes, no count bump.
        let mut p = Page::new(79);
        for i in 0..3 {
            assert!(p.try_push(&ints(i)).unwrap());
        }
        assert_eq!(p.bytes_used(), 60);
        assert!(!p.try_push(&ints(99)).unwrap(), "one byte short must refuse");
        assert_eq!(p.tuple_count(), 3);
        assert_eq!(p.bytes_used(), 60, "rolled back to the pre-push length");
        let decoded = p.decode_all().unwrap();
        assert_eq!(decoded.len(), 3);
        for (i, t) in decoded.iter().enumerate() {
            assert_eq!(t, &ints(i as i64), "no torn row after rollback");
        }
        // A smaller tuple still fits in the remaining 19 bytes.
        assert!(p.try_push(&[Value::Int(7)]).unwrap());
        assert_eq!(p.tuple_count(), 4);
        assert_eq!(p.decode_all().unwrap()[3], vec![Value::Int(7)]);
    }

    #[test]
    fn oversized_tuple_is_an_error_not_a_full_page() {
        let mut p = Page::new(16);
        let big = vec![Value::Str("x".repeat(100).into())];
        assert!(matches!(
            p.try_push(&big),
            Err(StorageError::TupleTooLarge { .. })
        ));
    }

    #[test]
    fn iteration_round_trips_in_order() {
        let mut p = Page::new(4096);
        for i in 0..50 {
            assert!(p.try_push(&ints(i)).unwrap());
        }
        let decoded = p.decode_all().unwrap();
        assert_eq!(decoded.len(), 50);
        for (i, t) in decoded.iter().enumerate() {
            assert_eq!(t[0], Value::Int(i as i64));
        }
        assert_eq!(p.iter().size_hint(), (50, Some(50)));
    }

    #[test]
    fn cursor_matches_iter_and_reuses_scratch() {
        let mut p = Page::new(4096);
        for i in 0..40 {
            p.try_push(&ints(i)).unwrap();
        }
        let via_iter = p.decode_all().unwrap();
        let mut via_cursor = Vec::new();
        let mut scratch = Vec::new();
        let mut cursor = p.cursor();
        while cursor.next_into(&mut scratch).unwrap() {
            via_cursor.push(scratch.clone());
        }
        assert_eq!(via_cursor, via_iter);
        assert_eq!(cursor.remaining(), 0);
        assert!(!cursor.next_into(&mut scratch).unwrap(), "stays exhausted");
    }

    #[test]
    fn cursor_select_skips_columns() {
        let mut p = Page::new(4096);
        p.try_push(&[Value::Int(1), Value::Str("pad".into())]).unwrap();
        let mut scratch = Vec::new();
        let mut cursor = p.cursor();
        assert!(cursor.next_select_into(Some(&[true, false]), &mut scratch).unwrap());
        assert_eq!(scratch, vec![Value::Int(1), Value::Null]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut p = Page::new(128);
        p.try_push(&ints(1)).unwrap();
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.bytes_used(), 0);
        assert!(p.try_push(&ints(2)).unwrap());
    }

    #[test]
    fn empty_page_iterates_nothing() {
        let p = Page::new(4096);
        assert_eq!(p.iter().count(), 0);
    }

    #[test]
    fn mixed_width_tuples() {
        let mut p = Page::new(4096);
        p.try_push(&[Value::Null]).unwrap();
        p.try_push(&[Value::Str("abc".into()), Value::Float(1.5)]).unwrap();
        let all = p.decode_all().unwrap();
        assert_eq!(all[0], vec![Value::Null]);
        assert_eq!(all[1], vec![Value::Str("abc".into()), Value::Float(1.5)]);
    }
}
