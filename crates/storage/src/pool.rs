//! A free list of cleared pages.
//!
//! Sealing a message block hands a full page to the network and replaces
//! it with an empty one; the receive side discards consumed pages. With a
//! fresh allocation per seal, the steady-state hot path allocates (and
//! regrows) a buffer per 2 KB message. The pool closes that loop: consumed
//! pages come back via [`PagePool::put`] and sealed slots are refilled via
//! [`PagePool::get`], so after warm-up the exchange paths recycle a small
//! working set of buffers instead of touching the allocator.
//!
//! The free list sits behind an internal mutex so the intra-node morsel
//! workers can share one pool through `&self` (uncontended in the serial
//! paths — the lock is a compare-and-swap there). Purely a wall-clock
//! optimization either way: pages are byte-identical to freshly
//! allocated ones (`get` only hands out cleared pages) and no cost event
//! is involved anywhere.

use crate::page::Page;
use std::sync::Mutex;

/// Upper bound on retained pages; beyond it, returned pages are dropped.
/// Sized for a node's steady state (one open page per peer plus in-flight
/// receives), not for bulk storage.
const MAX_POOLED: usize = 64;

/// A free list of cleared [`Page`]s, all of one byte capacity.
#[derive(Debug, Default)]
pub struct PagePool {
    free: Mutex<Vec<Page>>,
}

impl PagePool {
    /// An empty pool.
    pub fn new() -> Self {
        PagePool::default()
    }

    /// A cleared page of `capacity` bytes — recycled when available,
    /// freshly allocated otherwise. Pages of a different capacity are
    /// never handed out.
    pub fn get(&self, capacity: usize) -> Page {
        let mut free = self.free.lock().expect("page pool poisoned");
        match free.iter().position(|p| p.capacity() == capacity) {
            Some(i) => free.swap_remove(i),
            None => Page::new(capacity),
        }
    }

    /// Return a consumed page to the free list (cleared on the way in).
    pub fn put(&self, mut page: Page) {
        let mut free = self.free.lock().expect("page pool poisoned");
        if free.len() < MAX_POOLED {
            page.clear();
            free.push(page);
        }
    }

    /// Pages currently pooled.
    pub fn len(&self) -> usize {
        self.free.lock().expect("page pool poisoned").len()
    }

    /// Whether the pool holds no pages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::Value;

    #[test]
    fn recycles_cleared_pages_of_matching_capacity() {
        let pool = PagePool::new();
        let mut p = pool.get(128);
        assert_eq!(p.capacity(), 128);
        p.try_push(&[Value::Int(1)]).unwrap();
        pool.put(p);
        assert_eq!(pool.len(), 1);

        // Mismatched capacity allocates fresh and leaves the pooled page.
        let q = pool.get(256);
        assert_eq!(q.capacity(), 256);
        assert_eq!(pool.len(), 1);

        // Matching capacity recycles, cleared.
        let r = pool.get(128);
        assert!(r.is_empty());
        assert_eq!(pool.len(), 0);
    }

    #[test]
    fn pool_is_bounded() {
        let pool = PagePool::new();
        for _ in 0..(super::MAX_POOLED + 10) {
            pool.put(Page::new(64));
        }
        assert_eq!(pool.len(), super::MAX_POOLED);
    }

    #[test]
    fn pool_is_shared_across_threads() {
        let pool = PagePool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let page = pool.get(64);
                        pool.put(page);
                    }
                });
            }
        });
        assert!(pool.len() <= super::MAX_POOLED);
    }
}
