//! Heap files: append-only paged tuple files.
//!
//! A [`HeapFile`] models one on-disk file of a node: its partition of the
//! base relation, a result file, or a spooled bucket. Scanning charges one
//! `PageReadSeq` per page through the caller's [`CostTracker`]; appending
//! through [`HeapFile::append`] fills pages but charges nothing (cost is
//! charged when the writer *seals* pages via a tracker-aware path such as
//! [`HeapFile::append_tracked`] or when the file is written by a store
//! operator).

use crate::error::StorageError;
use crate::page::Page;
use adaptagg_model::{CostEvent, CostTracker, Value};
use std::sync::Arc;

/// Default disk page capacity (Table 1's `P`).
pub const DEFAULT_PAGE_BYTES: usize = 4096;

/// An append-only sequence of tuple pages.
///
/// Pages are reference-counted so cloning a file (the driver hands each
/// run its own copy of the base partitions) shares the page bytes;
/// appending copies only the open page when it is actually shared.
#[derive(Debug, Clone, Default)]
pub struct HeapFile {
    pages: Vec<Arc<Page>>,
    page_bytes: usize,
    tuple_count: usize,
}

impl HeapFile {
    /// An empty file with the given page capacity.
    pub fn new(page_bytes: usize) -> Self {
        HeapFile {
            pages: Vec::new(),
            page_bytes,
            tuple_count: 0,
        }
    }

    /// An empty file with 4 KB pages.
    pub fn with_default_pages() -> Self {
        HeapFile::new(DEFAULT_PAGE_BYTES)
    }

    /// Build a file from tuples (workload generators use this; no cost is
    /// charged — the data is assumed to pre-exist on disk, as the paper's
    /// base relations do).
    pub fn from_tuples<'a, I>(page_bytes: usize, tuples: I) -> Result<Self, StorageError>
    where
        I: IntoIterator<Item = &'a [Value]>,
    {
        let mut f = HeapFile::new(page_bytes);
        for t in tuples {
            f.append(t)?;
        }
        Ok(f)
    }

    /// Rebuild a file from already-validated pages (persistence).
    pub fn from_pages(page_bytes: usize, pages: Vec<Page>) -> Result<Self, StorageError> {
        let tuple_count = pages.iter().map(|p| p.tuple_count()).sum();
        Ok(HeapFile {
            pages: pages.into_iter().map(Arc::new).collect(),
            page_bytes,
            tuple_count,
        })
    }

    /// Page capacity in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Number of pages (partially-filled last page included).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total tuples stored.
    pub fn tuple_count(&self) -> usize {
        self.tuple_count
    }

    /// Total bytes of tuple data.
    pub fn bytes_used(&self) -> usize {
        self.pages.iter().map(|p| p.bytes_used()).sum()
    }

    /// The page at `idx`.
    pub fn page(&self, idx: usize) -> Result<&Page, StorageError> {
        self.pages
            .get(idx)
            .map(|p| p.as_ref())
            .ok_or(StorageError::PageOutOfRange {
                page: idx,
                pages: self.pages.len(),
            })
    }

    /// Append a tuple, opening a new page when the current one fills.
    /// No I/O cost is charged (see module docs).
    pub fn append(&mut self, values: &[Value]) -> Result<(), StorageError> {
        if let Some(last) = self.pages.last_mut() {
            if Arc::make_mut(last).try_push(values)? {
                self.tuple_count += 1;
                return Ok(());
            }
        }
        let mut page = Page::new(self.page_bytes);
        if !page.try_push(values)? {
            // try_push on a fresh page only fails via TupleTooLarge, which
            // it reports as Err; reaching here would be a logic error.
            unreachable!("fresh page refused a fitting tuple");
        }
        self.pages.push(Arc::new(page));
        self.tuple_count += 1;
        Ok(())
    }

    /// Append a tuple, charging a sequential page write each time a page
    /// is *sealed* (filled and a new one opened). Callers writing result
    /// files use this; remember to call [`HeapFile::flush_tracked`] at the
    /// end so the final partial page is charged too.
    pub fn append_tracked<T: CostTracker>(
        &mut self,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<(), StorageError> {
        let before = self.pages.len();
        self.append(values)?;
        if self.pages.len() > before && before > 0 {
            // The previously-open page was sealed by this append.
            tracker.record(CostEvent::PageWriteSeq, 1);
        }
        Ok(())
    }

    /// Charge the final partial page of a tracked write sequence.
    pub fn flush_tracked<T: CostTracker>(&self, tracker: &mut T) {
        if self.pages.last().is_some_and(|p| !p.is_empty()) {
            tracker.record(CostEvent::PageWriteSeq, 1);
        }
    }

    /// Sequentially scan all tuples, charging one `PageReadSeq` per page.
    /// The per-tuple `t_r`/`t_w` select costs are charged by the scan
    /// *operator* (see `adaptagg-exec`), not here.
    pub fn scan<'a, T: CostTracker>(&'a self, tracker: &'a mut T) -> ScanIter<'a, T> {
        ScanIter {
            file: self,
            tracker,
            page: 0,
            in_page: None,
        }
    }

    /// Read one page at a random position (page-level sampling), charging
    /// one `PageReadRand`.
    pub fn read_page_random<T: CostTracker>(
        &self,
        idx: usize,
        tracker: &mut T,
    ) -> Result<&Page, StorageError> {
        let p = self.page(idx)?;
        tracker.record(CostEvent::PageReadRand, 1);
        Ok(p)
    }

    /// Iterate tuples without any cost accounting (verification paths).
    pub fn iter_untracked(&self) -> impl Iterator<Item = Result<Vec<Value>, StorageError>> + '_ {
        self.pages.iter().flat_map(|p| p.iter())
    }
}

/// Cost-tracked sequential scan.
#[derive(Debug)]
pub struct ScanIter<'a, T: CostTracker> {
    file: &'a HeapFile,
    tracker: &'a mut T,
    page: usize,
    in_page: Option<std::vec::IntoIter<Vec<Value>>>,
}

impl<T: CostTracker> Iterator for ScanIter<'_, T> {
    type Item = Result<Vec<Value>, StorageError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(iter) = &mut self.in_page {
                if let Some(t) = iter.next() {
                    return Some(Ok(t));
                }
                self.in_page = None;
            }
            if self.page >= self.file.pages.len() {
                return None;
            }
            self.tracker.record(CostEvent::PageReadSeq, 1);
            let page = &self.file.pages[self.page];
            self.page += 1;
            match page.decode_all() {
                Ok(tuples) => self.in_page = Some(tuples.into_iter()),
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{CountingTracker, Value};

    fn tuple(i: i64) -> Vec<Value> {
        vec![Value::Int(i), Value::Int(i * 3)]
    }

    fn build(n: i64, page_bytes: usize) -> HeapFile {
        let tuples: Vec<Vec<Value>> = (0..n).map(tuple).collect();
        HeapFile::from_tuples(page_bytes, tuples.iter().map(|t| t.as_slice())).unwrap()
    }

    #[test]
    fn append_fills_pages_in_order() {
        // 20-byte tuples, 64-byte pages → 3 per page.
        let f = build(10, 64);
        assert_eq!(f.tuple_count(), 10);
        assert_eq!(f.page_count(), 4); // 3+3+3+1
        assert_eq!(f.page(0).unwrap().tuple_count(), 3);
        assert_eq!(f.page(3).unwrap().tuple_count(), 1);
        assert!(f.page(4).is_err());
    }

    #[test]
    fn scan_charges_one_seq_read_per_page_and_yields_all() {
        let f = build(10, 64);
        let mut t = CountingTracker::new();
        let tuples: Result<Vec<_>, _> = f.scan(&mut t).collect();
        let tuples = tuples.unwrap();
        assert_eq!(tuples.len(), 10);
        assert_eq!(tuples[7][0], Value::Int(7));
        assert_eq!(t.count(CostEvent::PageReadSeq), 4);
        assert_eq!(t.count(CostEvent::PageReadRand), 0);
    }

    #[test]
    fn random_page_read_charges_rand_io() {
        let f = build(10, 64);
        let mut t = CountingTracker::new();
        let p = f.read_page_random(2, &mut t).unwrap();
        assert_eq!(p.tuple_count(), 3);
        assert_eq!(t.count(CostEvent::PageReadRand), 1);
        assert!(f.read_page_random(99, &mut t).is_err());
    }

    #[test]
    fn tracked_append_charges_on_seal_plus_flush() {
        let mut f = HeapFile::new(64);
        let mut t = CountingTracker::new();
        for i in 0..7 {
            f.append_tracked(&tuple(i), &mut t).unwrap();
        }
        // 7 tuples → pages of 3/3/1; two seals happened.
        assert_eq!(t.count(CostEvent::PageWriteSeq), 2);
        f.flush_tracked(&mut t);
        assert_eq!(t.count(CostEvent::PageWriteSeq), 3);
    }

    #[test]
    fn flush_on_empty_file_charges_nothing() {
        let f = HeapFile::new(64);
        let mut t = CountingTracker::new();
        f.flush_tracked(&mut t);
        assert_eq!(t.count(CostEvent::PageWriteSeq), 0);
    }

    #[test]
    fn untracked_iteration_matches_scan() {
        let f = build(25, 128);
        let a: Vec<_> = f.iter_untracked().map(|r| r.unwrap()).collect();
        let mut t = CountingTracker::new();
        let b: Vec<_> = f.scan(&mut t).map(|r| r.unwrap()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bytes_used_sums_pages() {
        let f = build(10, 64);
        assert_eq!(f.bytes_used(), 10 * 20);
    }
}
