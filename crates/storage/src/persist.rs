//! Heap-file persistence: serialize partitions to real files so generated
//! workloads can be saved once and reloaded across runs (deterministic
//! seeds make regeneration possible, but paper-scale relations take time
//! to generate; a downstream user will want both options).
//!
//! Format (little-endian throughout):
//!
//! ```text
//! file   := magic "ADAGHF01"  page_bytes:u32  page_count:u32  page*
//! page   := tuple_count:u32  byte_len:u32  bytes
//! ```
//!
//! Loading re-validates every page byte-for-byte via
//! [`crate::Page::from_raw`], so a truncated or corrupted file fails
//! loudly instead of feeding garbage tuples to the engine.

use crate::error::StorageError;
use crate::heapfile::HeapFile;
use crate::page::Page;
use adaptagg_model::ModelError;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"ADAGHF01";

/// Serialize a heap file into a byte buffer.
pub fn to_bytes(file: &HeapFile) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + file.bytes_used() + 8 * file.page_count());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(file.page_bytes() as u32).to_le_bytes());
    out.extend_from_slice(&(file.page_count() as u32).to_le_bytes());
    let mut payload = Vec::new();
    for i in 0..file.page_count() {
        let page = file.page(i).expect("index in range");
        payload.clear();
        page.encode_into(&mut payload);
        out.extend_from_slice(&(page.tuple_count() as u32).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

/// Deserialize a heap file from bytes (inverse of [`to_bytes`]).
pub fn from_bytes(bytes: &[u8]) -> Result<HeapFile, StorageError> {
    let corrupt = |what: &'static str| StorageError::Model(ModelError::Corrupt(what));
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], StorageError> {
        let end = pos
            .checked_add(n)
            .filter(|&e| e <= bytes.len())
            .ok_or(StorageError::Model(ModelError::Corrupt(
                "truncated heap-file image",
            )))?;
        let s = &bytes[*pos..end];
        *pos = end;
        Ok(s)
    };
    let read_u32 = |pos: &mut usize| -> Result<u32, StorageError> {
        let b: [u8; 4] = take(pos, 4)?.try_into().expect("4 bytes");
        Ok(u32::from_le_bytes(b))
    };

    if take(&mut pos, 8)? != MAGIC {
        return Err(corrupt("bad magic (not a heap-file image)"));
    }
    let page_bytes = read_u32(&mut pos)? as usize;
    let page_count = read_u32(&mut pos)? as usize;

    let mut pages = Vec::with_capacity(page_count);
    for _ in 0..page_count {
        let tuples = read_u32(&mut pos)?;
        let len = read_u32(&mut pos)? as usize;
        let data = take(&mut pos, len)?.to_vec();
        pages.push(Page::from_raw(page_bytes, data, tuples)?);
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes after heap-file image"));
    }
    HeapFile::from_pages(page_bytes, pages)
}

/// Save a heap file to a filesystem path.
pub fn save(file: &HeapFile, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&to_bytes(file))?;
    f.flush()
}

/// Load a heap file from a filesystem path.
pub fn load(path: impl AsRef<Path>) -> std::io::Result<HeapFile> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    from_bytes(&buf).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::Value;

    fn sample(n: i64) -> HeapFile {
        let tuples: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Int(i), Value::Str(format!("row{i}").into())])
            .collect();
        HeapFile::from_tuples(128, tuples.iter().map(|t| t.as_slice())).unwrap()
    }

    #[test]
    fn round_trips_bytes() {
        let f = sample(100);
        let bytes = to_bytes(&f);
        let g = from_bytes(&bytes).unwrap();
        assert_eq!(g.page_bytes(), 128);
        assert_eq!(g.tuple_count(), 100);
        let a: Vec<_> = f.iter_untracked().map(|t| t.unwrap()).collect();
        let b: Vec<_> = g.iter_untracked().map(|t| t.unwrap()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_file_round_trips() {
        let f = HeapFile::new(4096);
        let g = from_bytes(&to_bytes(&f)).unwrap();
        assert_eq!(g.tuple_count(), 0);
        assert_eq!(g.page_count(), 0);
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = to_bytes(&sample(10));
        // Every strict prefix must fail (never panic, never succeed).
        for cut in 0..bytes.len() {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn bad_magic_and_trailing_garbage_are_detected() {
        let mut bytes = to_bytes(&sample(3));
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(from_bytes(&wrong).is_err());
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn corrupted_page_payload_is_detected() {
        let mut bytes = to_bytes(&sample(5));
        // Flip a byte inside the first page's tuple data (after the two
        // headers: 16 file bytes + 8 page-header bytes).
        let target = 16 + 8 + 2;
        bytes[target] = 0xEE;
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let dir = std::env::temp_dir().join("adaptagg_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("part0.ahf");
        let f = sample(42);
        save(&f, &path).unwrap();
        let g = load(&path).unwrap();
        assert_eq!(g.tuple_count(), 42);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_of_missing_file_is_io_error() {
        assert!(load("/nonexistent/nope.ahf").is_err());
    }

    #[test]
    fn appending_after_load_continues_the_last_page() {
        let f = sample(5);
        let mut g = from_bytes(&to_bytes(&f)).unwrap();
        g.append(&[Value::Int(99), Value::Str("x".into())]).unwrap();
        assert_eq!(g.tuple_count(), 6);
        let last: Vec<_> = g.iter_untracked().map(|t| t.unwrap()).collect();
        assert_eq!(last[5][0], Value::Int(99));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary bytes never panic the loader.
        #[test]
        fn prop_loader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = from_bytes(&bytes);
        }
    }
}
