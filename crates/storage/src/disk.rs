//! A node's simulated disk: named heap files + I/O counters.
//!
//! Each cluster node owns exactly one `SimDisk` ("one disk per node", the
//! paper's configuration). The disk is the home of the node's partition of
//! the base relation, its result file, and any overflow spill files. It
//! also aggregates I/O counters so a run can report per-node I/O volumes
//! (the `EXPERIMENTS.md` breakdowns).

use crate::error::StorageError;
use crate::heapfile::HeapFile;
use std::collections::BTreeMap;

/// Running totals of a disk's page I/O (event counts, not time).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoCounters {
    /// Sequential page reads.
    pub seq_reads: u64,
    /// Sequential page writes.
    pub seq_writes: u64,
    /// Random page reads.
    pub rand_reads: u64,
}

impl IoCounters {
    /// Total pages touched.
    pub fn total_pages(&self) -> u64 {
        self.seq_reads + self.seq_writes + self.rand_reads
    }

    /// Element-wise sum.
    pub fn add(&mut self, other: &IoCounters) {
        self.seq_reads += other.seq_reads;
        self.seq_writes += other.seq_writes;
        self.rand_reads += other.rand_reads;
    }
}

/// One node's disk: a namespace of heap files.
#[derive(Debug, Default)]
pub struct SimDisk {
    files: BTreeMap<String, HeapFile>,
}

impl SimDisk {
    /// An empty disk.
    pub fn new() -> Self {
        SimDisk::default()
    }

    /// A disk pre-loaded with the node's base-relation partition under the
    /// conventional name `"base"`.
    pub fn with_base_partition(partition: HeapFile) -> Self {
        let mut d = SimDisk::new();
        d.put("base", partition);
        d
    }

    /// Store (or replace) a file.
    pub fn put(&mut self, name: impl Into<String>, file: HeapFile) {
        self.files.insert(name.into(), file);
    }

    /// Borrow a file.
    pub fn get(&self, name: &str) -> Result<&HeapFile, StorageError> {
        self.files
            .get(name)
            .ok_or_else(|| StorageError::NoSuchFile(name.to_string()))
    }

    /// Mutably borrow a file, creating it empty (with the given page size)
    /// if absent.
    pub fn get_or_create(&mut self, name: &str, page_bytes: usize) -> &mut HeapFile {
        self.files
            .entry(name.to_string())
            .or_insert_with(|| HeapFile::new(page_bytes))
    }

    /// Remove a file, returning it.
    pub fn take(&mut self, name: &str) -> Result<HeapFile, StorageError> {
        self.files
            .remove(name)
            .ok_or_else(|| StorageError::NoSuchFile(name.to_string()))
    }

    /// Names of all files, sorted.
    pub fn file_names(&self) -> Vec<&str> {
        self.files.keys().map(|s| s.as_str()).collect()
    }

    /// Total pages across all files.
    pub fn total_pages(&self) -> usize {
        self.files.values().map(|f| f.page_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::Value;

    fn small_file(n: i64) -> HeapFile {
        let tuples: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Int(i)]).collect();
        HeapFile::from_tuples(4096, tuples.iter().map(|t| t.as_slice())).unwrap()
    }

    #[test]
    fn put_get_take() {
        let mut d = SimDisk::new();
        d.put("base", small_file(5));
        assert_eq!(d.get("base").unwrap().tuple_count(), 5);
        assert!(d.get("missing").is_err());
        let f = d.take("base").unwrap();
        assert_eq!(f.tuple_count(), 5);
        assert!(d.get("base").is_err());
    }

    #[test]
    fn get_or_create_makes_empty_file() {
        let mut d = SimDisk::new();
        d.get_or_create("result", 4096)
            .append(&[Value::Int(1)])
            .unwrap();
        assert_eq!(d.get("result").unwrap().tuple_count(), 1);
    }

    #[test]
    fn with_base_partition_uses_conventional_name() {
        let d = SimDisk::with_base_partition(small_file(3));
        assert_eq!(d.get("base").unwrap().tuple_count(), 3);
        assert_eq!(d.file_names(), vec!["base"]);
        assert_eq!(d.total_pages(), 1);
    }

    #[test]
    fn io_counters_arithmetic() {
        let mut a = IoCounters {
            seq_reads: 1,
            seq_writes: 2,
            rand_reads: 3,
        };
        let b = IoCounters {
            seq_reads: 10,
            seq_writes: 20,
            rand_reads: 30,
        };
        a.add(&b);
        assert_eq!(a.seq_reads, 11);
        assert_eq!(a.total_pages(), 66);
    }
}
