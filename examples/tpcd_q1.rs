//! TPC-D-flavoured workloads: the motivation of the paper's introduction
//! ("in the TPC-D benchmark 15 out of 17 queries contain aggregate
//! operations", with result sizes from 2 tuples to over a million).
//!
//! Runs Q1-style (6 groups, 4 aggregates), a per-order aggregate
//! (~rows/4 groups), and DISTINCT orders — three points spanning the
//! selectivity spectrum — under the Sampling algorithm, showing its
//! decision flip.
//!
//! ```sh
//! cargo run --release --example tpcd_q1
//! ```

use adaptagg::prelude::*;

fn main() {
    let w = TpcdWorkload::new(100_000);
    let cluster = ClusterConfig::new(8, CostParams::cluster_default());
    let parts = w.generate_partitions(cluster.nodes);

    for (name, query) in [
        ("Q1-style  (flag_status groups)", TpcdWorkload::q1_query()),
        ("per-order (orderkey groups)", TpcdWorkload::per_order_query()),
        ("DISTINCT orders", TpcdWorkload::distinct_orders_query()),
    ] {
        let reference = reference_aggregate(&parts, &query).unwrap();
        let out = run_algorithm(AlgorithmKind::Sampling, &cluster, &parts, &query)
            .expect("run succeeds");
        assert_eq!(out.rows, reference);
        let choice = out.nodes[0]
            .events
            .iter()
            .find_map(|e| match e {
                AdaptEvent::SamplingChose(c) => Some(*c),
                _ => None,
            })
            .expect("sampling decision recorded");
        println!("{name}");
        println!("  query        : {query}");
        println!("  result size  : {} groups (S = {:.2e})", out.rows.len(),
            out.rows.len() as f64 / w.rows as f64);
        println!("  sampler chose: {choice}");
        println!("  virtual time : {:.1} ms", out.elapsed_ms());
        if name.starts_with("Q1") {
            println!("  result rows  :");
            for row in &out.rows {
                println!("    {row}");
            }
        }
        println!();
    }
}
