//! The paper's headline claims, reproduced in one run (each claim is
//! asserted, so this example doubles as an executable abstract).
//!
//! ```sh
//! cargo run --release --example paper_tour
//! ```

use adaptagg::prelude::*;

fn time(
    kind: AlgorithmKind,
    parts: &[adaptagg::storage::HeapFile],
    cluster: &ClusterConfig,
) -> f64 {
    run_algorithm(kind, cluster, parts, &default_query())
        .expect("run succeeds")
        .elapsed_ms()
}

fn main() {
    let params = CostParams {
        max_hash_entries: 1_000,
        ..CostParams::cluster_default()
    };
    let cluster = ClusterConfig::new(8, params);

    println!("Claim 1 (§2): each traditional algorithm has a bad selectivity range.");
    let few = generate_partitions(&RelationSpec::uniform(100_000, 16), 8);
    let many = generate_partitions(&RelationSpec::uniform(100_000, 40_000), 8);
    let tp_few = time(AlgorithmKind::TwoPhase, &few, &cluster);
    let rep_few = time(AlgorithmKind::Repartitioning, &few, &cluster);
    let tp_many = time(AlgorithmKind::TwoPhase, &many, &cluster);
    let rep_many = time(AlgorithmKind::Repartitioning, &many, &cluster);
    println!("  16 groups    : 2P {tp_few:.0} ms  vs  Rep {rep_few:.0} ms  → 2P wins");
    println!("  40K groups   : 2P {tp_many:.0} ms  vs  Rep {rep_many:.0} ms  → Rep wins");
    assert!(tp_few < rep_few && rep_many < tp_many);

    println!("\nClaim 2 (§3.2): Adaptive Two Phase tracks the winner at both ends.");
    let a2p_few = time(AlgorithmKind::AdaptiveTwoPhase, &few, &cluster);
    let a2p_many = time(AlgorithmKind::AdaptiveTwoPhase, &many, &cluster);
    println!("  16 groups    : A-2P {a2p_few:.0} ms (best static {:.0})", tp_few.min(rep_few));
    println!("  40K groups   : A-2P {a2p_many:.0} ms (best static {:.0})", tp_many.min(rep_many));
    assert!(a2p_few <= tp_few.min(rep_few) * 1.1);
    assert!(a2p_many <= tp_many.min(rep_many) * 1.1);

    println!("\nClaim 3 (§6): under output skew the adaptives beat BOTH statics,");
    println!("because each node decides independently.");
    let skew = OutputSkewSpec::paper_figure9(12_500, 60_000).generate_partitions();
    let tp = time(AlgorithmKind::TwoPhase, &skew, &cluster);
    let rep = time(AlgorithmKind::Repartitioning, &skew, &cluster);
    let a2p = time(AlgorithmKind::AdaptiveTwoPhase, &skew, &cluster);
    println!("  2P {tp:.0} ms, Rep {rep:.0} ms, A-2P {a2p:.0} ms");
    assert!(a2p < tp && a2p < rep, "A-2P must beat both statics");
    println!(
        "  → A-2P is {:.1}x faster than the best static algorithm here",
        tp.min(rep) / a2p
    );

    println!("\nAll three claims reproduced ✓");
}
