//! The §6 output-skew study: four of eight nodes hold a single group
//! each, the other four share thousands. The adaptive algorithms beat
//! *both* static algorithms because each node picks its own strategy —
//! group-poor nodes keep compressing locally, group-rich nodes switch to
//! repartitioning.
//!
//! ```sh
//! cargo run --release --example skew_study
//! ```

use adaptagg::prelude::*;

fn main() {
    let spec = OutputSkewSpec::paper_figure9(20_000, 120_000);
    let params = CostParams {
        max_hash_entries: 1_000,
        ..CostParams::cluster_default()
    };
    let cluster = ClusterConfig::new(spec.nodes, params);
    let parts = spec.generate_partitions();
    let query = default_query();
    let reference = reference_aggregate(&parts, &query).unwrap();

    println!(
        "output skew: {} nodes × {} tuples, {} groups total;",
        spec.nodes, spec.tuples_per_node, spec.groups
    );
    println!(
        "nodes 0-3 hold ONE group each, nodes 4-7 share the other {}\n",
        spec.groups - spec.poor_nodes
    );

    println!(
        "{:<8} {:>12} {:>10} {:>11} {:>22}",
        "algo", "virtual ms", "spilled", "imbalance", "nodes that adapted"
    );
    for kind in [
        AlgorithmKind::TwoPhase,
        AlgorithmKind::Repartitioning,
        AlgorithmKind::Sampling,
        AlgorithmKind::AdaptiveTwoPhase,
        AlgorithmKind::AdaptiveRepartitioning,
    ] {
        let out = run_algorithm(kind, &cluster, &parts, &query).expect("run succeeds");
        assert_eq!(out.rows, reference, "{kind} diverged");
        println!(
            "{:<8} {:>12.1} {:>10} {:>11.2} {:>22}",
            kind.label(),
            out.elapsed_ms(),
            out.total_spilled(),
            out.run.imbalance(),
            format!("{:?}", out.adapted_nodes()),
        );
    }

    // Show the per-node story for A-2P: only the rich nodes switch.
    let out = run_algorithm(AlgorithmKind::AdaptiveTwoPhase, &cluster, &parts, &query).unwrap();
    println!("\nA-2P per-node decisions:");
    for (i, node) in out.nodes.iter().enumerate() {
        let what = node
            .events
            .iter()
            .find_map(|e| match e {
                AdaptEvent::SwitchedToRepartitioning { at_tuple } => {
                    Some(format!("switched to repartitioning after {at_tuple} tuples"))
                }
                _ => None,
            })
            .unwrap_or_else(|| "stayed in Two Phase mode".to_string());
        println!("  node {i}: {what}");
    }
}
