//! Duplicate elimination: `SELECT DISTINCT` is aggregation with no
//! aggregate functions and a result that can approach the input size —
//! the far-right end of the paper's selectivity spectrum, where
//! Repartitioning-style processing is essential.
//!
//! ```sh
//! cargo run --release --example duplicate_elimination
//! ```

use adaptagg::prelude::*;

fn main() {
    // 120 K order-line rows over 40 K distinct orders: DISTINCT keeps a
    // third of the input.
    let w = TpcdWorkload::new(120_000);
    let query = TpcdWorkload::distinct_orders_query();
    let params = CostParams {
        max_hash_entries: 2_000, // small memory: the 2P family must spill
        ..CostParams::cluster_default()
    };
    let cluster = ClusterConfig::new(8, params);
    let parts = w.generate_partitions(cluster.nodes);
    let reference = reference_aggregate(&parts, &query).unwrap();

    println!("query    : {query}");
    println!("input    : {} rows → {} distinct orders\n", w.rows, reference.len());
    println!(
        "{:<8} {:>12} {:>10} {:>13}",
        "algo", "virtual ms", "spilled", "vs best"
    );

    let mut results = Vec::new();
    for kind in [
        AlgorithmKind::TwoPhase,
        AlgorithmKind::Repartitioning,
        AlgorithmKind::Sampling,
        AlgorithmKind::AdaptiveTwoPhase,
        AlgorithmKind::AdaptiveRepartitioning,
    ] {
        let out = run_algorithm(kind, &cluster, &parts, &query).expect("run succeeds");
        assert_eq!(out.rows, reference, "{kind} diverged");
        results.push((kind, out.elapsed_ms(), out.total_spilled()));
    }
    let best = results
        .iter()
        .map(|(_, t, _)| *t)
        .fold(f64::INFINITY, f64::min);
    for (kind, t, spilled) in &results {
        println!(
            "{:<8} {:>12.1} {:>10} {:>12.2}x",
            kind.label(),
            t,
            spilled,
            t / best
        );
    }
    println!(
        "\nAt duplicate-elimination selectivities, local aggregation stops\n\
         compressing: Two Phase ships nearly as much as Repartitioning and\n\
         pays intermediate I/O on top. The adaptive algorithms converge to\n\
         Repartitioning behaviour on their own — the paper recommends\n\
         supporting A-Rep exactly for this workload (§7)."
    );
}
