//! Explore the paper's analytical cost model (§2–4): sweep the grouping
//! selectivity on both network types and print the per-phase breakdown of
//! a chosen point.
//!
//! ```sh
//! cargo run --release --example cost_explorer
//! ```

use adaptagg::prelude::*;

fn sweep(title: &str, cfg: &ModelConfig) {
    println!("\n=== {title} ===");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "selectivity", "C-2P", "2P", "Rep", "Samp", "A-2P", "winner"
    );
    let algos = [
        CostAlgorithm::CentralizedTwoPhase,
        CostAlgorithm::TwoPhase,
        CostAlgorithm::Repartitioning,
        CostAlgorithm::Sampling,
        CostAlgorithm::AdaptiveTwoPhase,
    ];
    for row in selectivity_sweep(cfg, &algos, 1) {
        let (wi, _) = row
            .times_ms
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        print!("{:>12.3e}", row.selectivity);
        for t in &row.times_ms {
            print!(" {:>10.0}", t);
        }
        println!(" {:>8}", algos[wi].label());
    }
}

fn main() {
    let fast = ModelConfig::paper_standard();
    sweep("32 nodes, 8M tuples, high-speed network (ms)", &fast);

    let slow = ModelConfig::paper_cluster();
    sweep("8 nodes, 2M tuples, 10Mbit shared bus (ms)", &slow);

    // Per-phase anatomy of one interesting point: just past the memory
    // knee, where the adaptive switch pays off.
    let s = 0.01;
    println!("\n=== anatomy at S = {s} (fast network) ===");
    for algo in [
        CostAlgorithm::TwoPhase,
        CostAlgorithm::Repartitioning,
        CostAlgorithm::AdaptiveTwoPhase,
    ] {
        println!("{}:", algo.label());
        println!("{}", algo.cost(&fast, s));
    }

    // Scaleup curves (Figures 5–6).
    println!("\n=== scaleup, S = 2e-6 (1.0 = ideal) ===");
    for algo in [
        CostAlgorithm::TwoPhase,
        CostAlgorithm::AdaptiveTwoPhase,
        CostAlgorithm::AdaptiveRepartitioning,
    ] {
        let curve = scaleup_curve(&fast, algo, 2.0e-6, &[1, 4, 16, 32], 250_000.0);
        print!("{:<6}", algo.label());
        for (n, _, su) in curve {
            print!("  N={n}: {su:.3}");
        }
        println!();
    }
}
