//! Tour: run all nine strategies on the same workload and compare their
//! virtual-time behaviour, at a low- and a high-selectivity point.
//!
//! ```sh
//! cargo run --release --example algorithm_tour
//! ```

use adaptagg::prelude::*;

fn tour(tuples: usize, groups: usize, m: usize) {
    let spec = RelationSpec::uniform(tuples, groups);
    let params = CostParams {
        max_hash_entries: m,
        ..CostParams::cluster_default()
    };
    let cluster = ClusterConfig::new(8, params);
    let parts = generate_partitions(&spec, cluster.nodes);
    let query = default_query();
    let reference = reference_aggregate(&parts, &query).unwrap();

    println!(
        "\n=== {tuples} tuples, {groups} groups (S = {:.1e}), M = {m}, 8 nodes, shared bus ===",
        spec.selectivity()
    );
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>14} {:>9}",
        "algo", "virtual ms", "spilled", "net tuples", "adapted nodes", "correct"
    );
    for kind in AlgorithmKind::ALL {
        let out = run_algorithm(kind, &cluster, &parts, &query).expect("run succeeds");
        println!(
            "{:<8} {:>12.1} {:>10} {:>12} {:>14} {:>9}",
            kind.label(),
            out.elapsed_ms(),
            out.total_spilled(),
            out.run.total_net().tuples_sent,
            format!("{:?}", out.adapted_nodes()),
            if out.rows == reference { "✓" } else { "✗" }
        );
        assert_eq!(out.rows, reference, "{kind} diverged");
    }
}

fn main() {
    // Low selectivity: the Two Phase family wins; adaptives stay put.
    tour(80_000, 64, 1_000);
    // High selectivity (beyond the memory knee): Repartitioning wins;
    // A-2P switches, A-Rep never falls back.
    tour(80_000, 20_000, 1_000);
}
