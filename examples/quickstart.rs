//! Quickstart: aggregate a generated relation with the paper's flagship
//! algorithm (Adaptive Two Phase) on a simulated 8-node cluster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use adaptagg::prelude::*;

fn main() {
    // SELECT g, SUM(v), COUNT(*) FROM r GROUP BY g over a 100 K-tuple
    // relation with 1 000 groups, dealt round-robin across 8 nodes.
    let spec = RelationSpec::uniform(100_000, 1_000).with_seed(7);
    let query = AggQuery::new(
        vec![0],
        vec![AggSpec::over(AggFunc::Sum, 1), AggSpec::count_star()],
    );
    let cluster = ClusterConfig::new(8, CostParams::cluster_default());
    let partitions = generate_partitions(&spec, cluster.nodes);

    println!("query      : {query}");
    println!("relation   : {} tuples, {} groups (S = {:.2e})",
        spec.tuples, spec.groups, spec.selectivity());
    println!("cluster    : {} nodes, network {:?}", cluster.nodes, cluster.params.network);

    let outcome = run_algorithm(
        AlgorithmKind::AdaptiveTwoPhase,
        &cluster,
        &partitions,
        &query,
    )
    .expect("aggregation succeeds");

    println!("\nresult     : {} groups", outcome.rows.len());
    for row in outcome.rows.iter().take(5) {
        println!("  {row}");
    }
    println!("  …");

    println!("\nvirtual time : {:.1} ms (slowest node {})",
        outcome.elapsed_ms(),
        outcome.run.slowest_node().unwrap());
    let b = outcome.run.total_breakdown();
    println!("cluster time : cpu {:.1} io {:.1} net {:.1} wait {:.1} ms",
        b.cpu_ms, b.io_ms, b.net_ms, b.wait_ms);
    println!("network      : {} data pages, {} tuples shipped",
        outcome.run.total_net().pages_sent(),
        outcome.run.total_net().tuples_sent);
    println!("adapted nodes: {:?} (empty = stayed Two Phase everywhere)",
        outcome.adapted_nodes());

    // Verify against the single-node reference.
    let reference = reference_aggregate(&partitions, &query).unwrap();
    assert_eq!(outcome.rows, reference);
    println!("\nverified against single-node reference ✓");
}
