//! Tour of the fault-injection API through the public `adaptagg` crate:
//! seeded fault plans, exactness under link noise, typed crash errors,
//! the watchdog, and query-level fault recovery. Run with
//! `cargo run --release --example chaos_demo`.

use adaptagg::exec::{run_cluster, ExecError, FaultPlan};
use adaptagg::net::LinkFaults;
use adaptagg::prelude::*;
use std::time::Duration;

fn main() {
    let spec = RelationSpec::uniform(8_000, 200);
    let parts = generate_partitions(&spec, 4);
    let query = default_query();
    let cfg = AlgoConfig::default_for(4);
    let base = ClusterConfig::new(4, CostParams::paper_default());

    // 1. Clean baseline.
    let clean = run_algorithm_with(AlgorithmKind::TwoPhase, &base, &parts, &query, &cfg).unwrap();
    println!("[clean]    rows={} elapsed={:.4}ms", clean.rows.len(), clean.elapsed_ms());

    // 2. Fault plan present but empty => must be byte-identical.
    let off = base.clone().with_fault_plan(FaultPlan::none());
    let r = run_algorithm_with(AlgorithmKind::TwoPhase, &off, &parts, &query, &cfg).unwrap();
    println!(
        "[plan-off] rows match={} elapsed identical={}",
        r.rows == clean.rows,
        r.elapsed_ms() == clean.elapsed_ms()
    );

    // 3. Heavy link noise: exactness must survive.
    let noisy = base
        .clone()
        .with_fault_plan(FaultPlan::new(42).with_link_faults(LinkFaults {
            drop_prob: 0.25,
            dup_prob: 0.25,
            reorder_prob: 0.25,
        }));
    let r = run_algorithm_with(AlgorithmKind::TwoPhase, &noisy, &parts, &query, &cfg).unwrap();
    let net = r.run.total_net();
    println!(
        "[noisy]    rows match={} drops={} dups={} reorders={} elapsed={:.4}ms",
        r.rows == clean.rows,
        net.injected_drops,
        net.injected_dups,
        net.injected_reorders,
        r.elapsed_ms()
    );

    // 4. Everything dropped once (drop = retransmit penalty, still exact).
    let storm = base.clone().with_fault_plan(FaultPlan::new(7).with_link_faults(LinkFaults {
        drop_prob: 1.0,
        dup_prob: 0.0,
        reorder_prob: 0.0,
    }));
    let r = run_algorithm_with(AlgorithmKind::TwoPhase, &storm, &parts, &query, &cfg).unwrap();
    println!(
        "[storm]    rows match={} drops={} elapsed={:.4}ms (clean {:.4}ms)",
        r.rows == clean.rows,
        r.run.total_net().injected_drops,
        r.elapsed_ms(),
        clean.elapsed_ms()
    );

    // 5. Injected crash => typed first-cause error, no hang.
    let crashy = base.clone().with_fault_plan(FaultPlan::new(1).with_crash(2, 100));
    let err = run_algorithm_with(AlgorithmKind::TwoPhase, &crashy, &parts, &query, &cfg)
        .expect_err("crash plan must fail");
    println!("[crash]    err={err}");
    assert_eq!(err, ExecError::InjectedCrash { node: 2, at_tuple: 100 });

    // 6. Probe: crash on an out-of-range node id — should be inert, not panic.
    let oob = base.clone().with_fault_plan(FaultPlan::new(1).with_crash(9, 100));
    let r = run_algorithm_with(AlgorithmKind::TwoPhase, &oob, &parts, &query, &cfg);
    println!("[oob]      result ok={} rows match={}", r.is_ok(), r.as_ref().map(|o| o.rows == clean.rows).unwrap_or(false));

    // 7. Probe: pathological slowdown — still exact, wildly longer virtual time.
    let slow = base.clone().with_fault_plan(FaultPlan::new(1).with_slowdown(0, 1000.0));
    let r = run_algorithm_with(AlgorithmKind::TwoPhase, &slow, &parts, &query, &cfg).unwrap();
    println!("[slow]     rows match={} elapsed={:.1}ms", r.rows == clean.rows, r.elapsed_ms());

    // 8. Probe: near-zero watchdog on a *healthy* run — must not misfire.
    let wd = base.clone().with_watchdog(Duration::from_millis(1));
    match run_algorithm_with(AlgorithmKind::TwoPhase, &wd, &parts, &query, &cfg) {
        Ok(r) => println!("[watchdog] healthy run ok, rows match={}", r.rows == clean.rows),
        Err(e) => println!("[watchdog] fired on healthy run: {e}"),
    }

    // 9 (repeat). Same seed twice => identical injected-fault counters and rows.
    let mk = || {
        base.clone().with_fault_plan(FaultPlan::new(42).with_link_faults(LinkFaults {
            drop_prob: 0.25,
            dup_prob: 0.25,
            reorder_prob: 0.25,
        }))
    };
    // Sender-side traffic (and the injected_* tallies) are exact per seed;
    // the receiver-side dup_dropped tally may race a finishing receiver
    // (DESIGN.md §8.1), so it is excluded from the comparison.
    let a = run_algorithm_with(AlgorithmKind::TwoPhase, &mk(), &parts, &query, &cfg).unwrap();
    let b = run_algorithm_with(AlgorithmKind::TwoPhase, &mk(), &parts, &query, &cfg).unwrap();
    let (na, nb) = (a.run.total_net(), b.run.total_net());
    println!(
        "[repeat]   rows identical={} sent identical={} faults identical={}",
        a.rows == b.rows,
        (na.bytes_sent, na.tuples_sent, na.control_sent)
            == (nb.bytes_sent, nb.tuples_sent, nb.control_sent),
        (na.injected_drops, na.injected_dups, na.injected_reorders)
            == (nb.injected_drops, nb.injected_dups, nb.injected_reorders)
    );

    // 10 (stall). Watchdog catches a genuinely stalled node (waits on a message
    // that never comes) instead of hanging the whole cluster.
    let wd = base.clone().with_watchdog(Duration::from_millis(300));
    let r = run_cluster(&wd, parts.clone(), |ctx| {
        if ctx.id() == 3 {
            ctx.recv()?; // nobody ever sends to node 3
        }
        Ok(())
    });
    match r {
        Err(ExecError::Watchdog { node, waited_ms }) => {
            println!("[stall]    watchdog fired: node={node} waited_ms={waited_ms}")
        }
        other => println!("[stall]    UNEXPECTED: {other:?}"),
    }

    // 11 (recover). The same crash plan that fail-stopped in step 5, with
    // recovery enabled: node 2's partition is reassigned to a survivor,
    // checkpointed partials are restored, and the query *completes* with
    // exactly the clean rows.
    let recovering = base
        .clone()
        .with_fault_plan(FaultPlan::new(1).with_crash(2, 100))
        .with_recovery(RecoveryPolicy::default());
    let r = run_algorithm_with(AlgorithmKind::TwoPhase, &recovering, &parts, &query, &cfg)
        .expect("recovery must complete the crashed query");
    let rec = &r.run.recovery;
    let work = r.run.total_recovery();
    println!(
        "[recover]  rows match={} attempts={} dead={:?} reassigned={} \
         restored_rows={} replayed_pages={} lost={:.1}ms backoff={:.1}ms \
         elapsed={:.1}ms (with recovery {:.1}ms)",
        r.rows == clean.rows,
        rec.attempts,
        rec.dead_nodes,
        rec.reassigned_partitions,
        work.restored_partials,
        work.replayed_pages,
        rec.lost_ms,
        rec.backoff_ms,
        r.elapsed_ms(),
        r.run.elapsed_with_recovery_ms()
    );
    assert!(r.rows == clean.rows, "recovered rows must match the clean run");
    assert_eq!(rec.dead_nodes, vec![2], "the crash victim must be the removed node");
}
