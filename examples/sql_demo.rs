//! SQL front-end demo: compile textual queries against the TPC-D-ish
//! schema and run them through the adaptive engine.
//!
//! ```sh
//! cargo run --release --example sql_demo
//! ```

use adaptagg::model::{DataType, Field, Schema};
use adaptagg::prelude::*;

fn main() {
    // The lineitem-flavoured layout of `TpcdWorkload`.
    let schema = Schema::new(vec![
        Field::new("flag_status", DataType::Int),
        Field::new("orderkey", DataType::Int),
        Field::new("quantity", DataType::Int),
        Field::new("extendedprice", DataType::Int),
        Field::new("pad", DataType::Str),
    ]);
    let w = TpcdWorkload::new(60_000);
    let cluster = ClusterConfig::new(8, CostParams::cluster_default());
    let parts = w.generate_partitions(cluster.nodes);

    let queries = [
        "SELECT flag_status, SUM(quantity), AVG(extendedprice), COUNT(*) \
         FROM lineitem GROUP BY flag_status",
        "SELECT orderkey, MAX(quantity) FROM lineitem GROUP BY orderkey",
        "SELECT DISTINCT orderkey FROM lineitem",
        "SELECT STDDEV_POP(quantity) FROM lineitem",
        "SELECT flag_status, COUNT(*) AS big_items FROM lineitem \
         WHERE quantity >= 40 GROUP BY flag_status",
    ];

    for sql in queries {
        println!("sql> {sql}");
        let bound = match compile_sql(sql, &schema) {
            Ok(b) => b,
            Err(e) => {
                println!("  {e}\n");
                continue;
            }
        };
        let out = run_algorithm(AlgorithmKind::AdaptiveTwoPhase, &cluster, &parts, &bound.query)
            .expect("run succeeds");
        println!(
            "  {} rows in {:.1} virtual ms   [{}]",
            out.rows.len(),
            out.elapsed_ms(),
            bound.output_names.join(", ")
        );
        for row in out.rows.iter().take(4) {
            println!("    {row}");
        }
        if out.rows.len() > 4 {
            println!("    … {} more", out.rows.len() - 4);
        }
        println!();
    }

    // Errors come back with context, not panics.
    for bad in [
        "SELECT nope FROM lineitem GROUP BY nope2",
        "SELECT quantity FROM lineitem",
        "SELECT SUM(pad) FROM lineitem",
    ] {
        println!("sql> {bad}");
        println!("  {}\n", compile_sql(bad, &schema).unwrap_err());
    }
}
