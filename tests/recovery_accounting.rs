//! Property-style invariants over the recovery bookkeeping: whatever a
//! seeded chaos schedule does to a run, the `RecoveryStats` /
//! `NodeRecoveryStats` totals it reports must be internally consistent
//! — attempt counts, victim lists, reassignment counts, the backoff
//! series, and the per-link retry counters must all agree with each
//! other. The paper's figures are only as trustworthy as this
//! accounting.

use adaptagg::exec::{ExecError, FaultPlan, RecoveryPolicy};
use adaptagg::prelude::*;
use std::collections::HashSet;
use std::time::Duration;

const NODES: usize = 4;
const TUPLES: usize = 4_000;
const GROUPS: usize = 120;

const SIX: [AlgorithmKind; 6] = [
    AlgorithmKind::CentralizedTwoPhase,
    AlgorithmKind::TwoPhase,
    AlgorithmKind::Repartitioning,
    AlgorithmKind::Sampling,
    AlgorithmKind::AdaptiveTwoPhase,
    AlgorithmKind::AdaptiveRepartitioning,
];

fn config(plan: FaultPlan) -> ClusterConfig {
    ClusterConfig::new(NODES, CostParams::paper_default())
        .with_fault_plan(plan)
        .with_recovery(RecoveryPolicy::default())
        .with_watchdog(Duration::from_secs(10))
        .with_tracing()
}

/// The backoff the runtime books after `failures` failed attempts,
/// reproduced with the same operation sequence (`acc += b; b *= m`) so
/// the comparison is bit-exact.
fn expected_backoff(policy: &RecoveryPolicy, failures: u32) -> f64 {
    let mut acc = 0.0;
    let mut b = policy.backoff_ms;
    for _ in 0..failures {
        acc += b;
        b *= policy.backoff_multiplier;
    }
    acc
}

#[test]
fn recovery_stats_are_internally_consistent_across_the_chaos_matrix() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();
    let policy = RecoveryPolicy::default();

    let mut recovered_runs = 0;
    for seed in 0..15u64 {
        let plan = FaultPlan::random(seed, NODES);
        for kind in SIX {
            let label = format!("{kind} seed {seed}");
            let out = match run_algorithm(kind, &config(plan.clone()), &parts, &query) {
                Ok(out) => out,
                Err(ExecError::RecoveryExhausted { attempts, last }) => {
                    assert!(plan.has_crash(), "{label}: exhausted without a crash");
                    assert!(
                        attempts >= 2 && attempts <= policy.max_attempts,
                        "{label}: exhausted at attempts = {attempts}"
                    );
                    assert!(
                        !last.to_string().is_empty(),
                        "{label}: exhaustion must name its last cause"
                    );
                    continue;
                }
                Err(other) => panic!("{label}: unexpected failure {other:?}"),
            };
            let r = &out.run.recovery;

            // Attempt arithmetic: every failed attempt removes exactly
            // one node, and the success is the final attempt.
            assert!(
                r.attempts >= 1 && r.attempts <= policy.max_attempts,
                "{label}: attempts = {}",
                r.attempts
            );
            assert_eq!(
                r.attempts as usize,
                r.dead_nodes.len() + 1,
                "{label}: attempts and victim count disagree"
            );
            assert_eq!(r.recovered(), r.attempts > 1, "{label}: recovered() lies");

            // Victims: distinct, real node ids, never resurrected in
            // the final report.
            let distinct: HashSet<usize> = r.dead_nodes.iter().copied().collect();
            assert_eq!(
                distinct.len(),
                r.dead_nodes.len(),
                "{label}: a node died twice: {:?}",
                r.dead_nodes
            );
            assert!(
                r.dead_nodes.iter().all(|&n| n < NODES),
                "{label}: victim out of range: {:?}",
                r.dead_nodes
            );
            let survivors: HashSet<usize> =
                out.run.per_node.iter().map(|n| n.node).collect();
            assert_eq!(
                survivors.len(),
                NODES - r.dead_nodes.len(),
                "{label}: survivor count wrong"
            );
            assert!(
                survivors.is_disjoint(&distinct),
                "{label}: a dead node filed a report"
            );

            // Reassignment and cost: each victim owned at least its own
            // base partition; a clean run moves and spends nothing.
            if r.recovered() {
                assert!(
                    r.reassigned_partitions >= r.dead_nodes.len() as u64,
                    "{label}: {} victims but only {} partitions moved",
                    r.dead_nodes.len(),
                    r.reassigned_partitions
                );
                assert!(r.lost_ms >= 0.0, "{label}: negative lost time");
                recovered_runs += 1;
            } else {
                assert_eq!(r.reassigned_partitions, 0, "{label}: phantom reassignment");
                assert_eq!(r.lost_ms, 0.0, "{label}: lost time without a failure");
            }

            // The booked backoff is exactly the policy's geometric
            // series over the failed attempts.
            assert_eq!(
                r.backoff_ms,
                expected_backoff(&policy, r.attempts - 1),
                "{label}: backoff series off"
            );

            // Cross-check the per-link ledgers against the per-node
            // totals: what every link recorded as retries must sum to
            // the node's send_retries counter.
            let trace = out.trace.as_ref().expect("traced run carries a trace");
            for node in &out.run.per_node {
                let traced = trace
                    .nodes
                    .iter()
                    .find(|t| t.node == node.node)
                    .unwrap_or_else(|| panic!("{label}: node {} has no trace", node.node));
                let link_retries: u64 = traced.links.iter().map(|l| l.retries).sum();
                assert_eq!(
                    link_retries, node.net.send_retries,
                    "{label}: node {} link ledger disagrees with its retry total",
                    node.node
                );
            }

            // Node-level recovery activity only exists when the policy
            // actually had to recover (checkpoints are written during
            // healthy scans too, but restores and replays require a
            // prior failed attempt).
            let totals = out
                .run
                .per_node
                .iter()
                .fold(adaptagg::exec::NodeRecoveryStats::default(), |mut acc, n| {
                    acc.add(&n.recovery);
                    acc
                });
            if totals.restored_partials > 0 {
                assert!(
                    r.recovered(),
                    "{label}: partials restored in a run that never failed"
                );
                assert!(
                    totals.checkpoint_partials > 0,
                    "{label}: restored partials that were never checkpointed"
                );
            }
            if !r.recovered() {
                assert_eq!(
                    totals.replayed_pages, 0,
                    "{label}: replay without a failed attempt"
                );
            }
        }
    }
    assert!(
        recovered_runs > 0,
        "no schedule ever recovered — matrix too tame to test the accounting"
    );
    // Note what is *not* asserted: nonzero send retries. Reports cover
    // the successful final attempt only — the attempt in which nobody
    // died — so the retries spent probing a dying peer are discarded
    // with the failed attempt's seats. The retry counters themselves
    // are unit-tested in `net::fabric`; here we prove the surviving
    // ledgers agree with each other.
}

/// The same invariants hold over the TCP loopback backend — the
/// accounting lives in the reliability layer above the transport, so
/// swapping the wire must not change a single counter's meaning.
#[test]
fn recovery_accounting_holds_over_tcp_loopback() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();
    let policy = RecoveryPolicy::default();

    for seed in [1u64, 4] {
        let plan = FaultPlan::random(seed, NODES);
        for kind in [AlgorithmKind::TwoPhase, AlgorithmKind::Repartitioning] {
            let cfg = config(plan.clone())
                .with_transport(adaptagg::net::TransportKind::TcpLoopback);
            let label = format!("{kind} seed {seed} over tcp");
            let out = match run_algorithm(kind, &cfg, &parts, &query) {
                Ok(out) => out,
                Err(ExecError::RecoveryExhausted { .. }) => continue,
                Err(other) => panic!("{label}: unexpected failure {other:?}"),
            };
            let r = &out.run.recovery;
            assert_eq!(
                r.attempts as usize,
                r.dead_nodes.len() + 1,
                "{label}: attempts and victim count disagree"
            );
            assert_eq!(
                r.backoff_ms,
                expected_backoff(&policy, r.attempts - 1),
                "{label}: backoff series off"
            );
            let trace = out.trace.as_ref().expect("traced run carries a trace");
            assert_eq!(
                trace.transport, "tcp-loopback",
                "{label}: trace mislabels its transport"
            );
            for node in &out.run.per_node {
                let traced = trace.nodes.iter().find(|t| t.node == node.node).unwrap();
                let link_retries: u64 = traced.links.iter().map(|l| l.retries).sum();
                assert_eq!(link_retries, node.net.send_retries, "{label}");
            }
        }
    }
}
