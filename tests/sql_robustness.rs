//! Fuzz-style robustness suite for the SQL front-end — the serving
//! layer's outermost attack surface. Whatever text arrives over the
//! `adaptagg serve` socket — truncated, corrupted, deeply nested,
//! oversized, or pure noise — `compile` must return a typed
//! [`SqlError`], never panic, and never blow the stack or the heap on
//! the say-so of a hostile input (mirrors `frame_robustness.rs`, the
//! same contract one layer down).
//!
//! Deterministic by construction: all mutations are drawn from seeded
//! `SplitMix64` streams, so any failure replays exactly.

use adaptagg::model::{DataType, Field, Schema};
use adaptagg::net::SplitMix64;
use adaptagg::sql::{compile, parse, tokenize, SqlError};

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("g", DataType::Int),
        Field::new("v", DataType::Int),
        Field::new("pad", DataType::Str),
    ])
}

/// Valid seeds: every mutation below starts from one of these.
fn corpus() -> Vec<&'static str> {
    vec![
        "SELECT g, SUM(v), COUNT(*) FROM r GROUP BY g",
        "SELECT g, AVG(v) FROM r GROUP BY g",
        "SELECT g, MIN(v), MAX(v) FROM r GROUP BY g",
        "SELECT COUNT(*) FROM r",
        "SELECT DISTINCT g FROM r",
        "select g , sum ( v ) from r group by g",
    ]
}

/// The contract under test: typed error or success, never a panic.
fn must_not_panic(sql: &str) -> Result<(), SqlError> {
    // Exercise each stage separately too — a panic in the lexer must
    // not hide behind an earlier parser error and vice versa.
    let _ = tokenize(sql);
    let _ = parse(sql);
    compile(sql, &schema()).map(|_| ())
}

#[test]
fn corpus_compiles_clean() {
    for sql in corpus() {
        must_not_panic(sql).unwrap_or_else(|e| panic!("corpus {sql:?} must compile: {e}"));
    }
}

#[test]
fn truncation_at_every_char_boundary_is_typed() {
    for sql in corpus() {
        for end in 0..sql.len() {
            if !sql.is_char_boundary(end) {
                continue;
            }
            // Either a shorter-but-valid query or a typed error; a
            // panic fails the harness either way.
            let _ = must_not_panic(&sql[..end]);
        }
    }
}

#[test]
fn random_byte_corruption_is_typed() {
    let mut rng = SplitMix64::new(0x5eed_501);
    for sql in corpus() {
        for _ in 0..200 {
            let mut bytes = sql.as_bytes().to_vec();
            let flips = 1 + (rng.next_u64() as usize) % 4;
            for _ in 0..flips {
                let at = (rng.next_u64() as usize) % bytes.len();
                bytes[at] = (rng.next_u64() & 0xff) as u8;
            }
            // Corruption may produce invalid UTF-8; a server reads
            // lossily, so the front-end sees replacement chars.
            let corrupt = String::from_utf8_lossy(&bytes);
            let _ = must_not_panic(&corrupt);
        }
    }
}

#[test]
fn random_noise_is_typed() {
    let mut rng = SplitMix64::new(0x5eed_502);
    for len in [0usize, 1, 7, 64, 512] {
        for _ in 0..50 {
            let noise: String = (0..len)
                .map(|_| {
                    // Bias toward SQL-ish characters so some noise gets
                    // past the lexer into the parser.
                    let c = (rng.next_u64() % 96) as u8 + 32;
                    c as char
                })
                .collect();
            let _ = must_not_panic(&noise);
        }
    }
}

#[test]
fn deep_nesting_does_not_blow_the_stack() {
    // The grammar is flat (no parenthesized expressions), so nesting
    // must die in the parser with a typed error — at any depth. An
    // unbounded-recursion bug would overflow the stack here instead.
    for depth in [10usize, 1_000, 100_000] {
        let sql = format!(
            "SELECT {}g{} FROM r GROUP BY g",
            "(".repeat(depth),
            ")".repeat(depth)
        );
        let e = compile(&sql, &schema()).expect_err("nested parens are not in the grammar");
        assert!(!e.message.is_empty());
        let sum = format!("SELECT SUM{}v{} FROM r", "(".repeat(depth), ")".repeat(depth));
        assert!(compile(&sum, &schema()).is_err());
    }
}

#[test]
fn oversized_inputs_are_typed_not_fatal() {
    // A 4 MB identifier, a 4 MB literal-ish token, and a query with tens
    // of thousands of select items: all must come back as typed errors
    // (or a clean parse) in reasonable time and memory.
    let big_ident = format!("SELECT {} FROM r", "x".repeat(4 << 20));
    assert!(compile(&big_ident, &schema()).is_err(), "unknown 4MB column");

    let many_items = {
        let mut s = String::from("SELECT g");
        for _ in 0..50_000 {
            s.push_str(", SUM(v)");
        }
        s.push_str(" FROM r GROUP BY g");
        s
    };
    compile(&many_items, &schema()).expect("50k aggregates is big, not wrong");

    let long_noise = "?".repeat(1 << 20);
    let e = tokenize(&long_noise).expect_err("noise must fail the lexer");
    assert_eq!(e.position, Some(0), "fail at the first bad byte, not the last");
}

#[test]
fn error_positions_point_into_the_source() {
    for sql in corpus() {
        let mut rng = SplitMix64::new(0x5eed_503);
        for _ in 0..100 {
            let mut bytes = sql.as_bytes().to_vec();
            let at = (rng.next_u64() as usize) % bytes.len();
            bytes[at] = b'\x01'; // never legal in the grammar
            let corrupt = String::from_utf8(bytes).unwrap();
            match compile(&corrupt, &schema()) {
                Ok(_) => panic!("\\x01 can never compile: {corrupt:?}"),
                Err(e) => {
                    if let Some(p) = e.position {
                        assert!(
                            p <= corrupt.len(),
                            "position {p} outside source of {} bytes",
                            corrupt.len()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn binder_rejections_are_typed() {
    for bad in [
        "SELECT nope FROM r GROUP BY nope",
        "SELECT g, SUM(pad) FROM r GROUP BY g",
        "SELECT v FROM r GROUP BY g",
        "SELECT g, SUM(v) FROM r",
        "SELECT g, SUM(missing) FROM r GROUP BY g",
        "SELECT AVG(pad) FROM r",
    ] {
        let e = compile(bad, &schema()).expect_err(bad);
        assert!(!e.message.is_empty(), "binder error must explain: {bad}");
    }
}
