//! Edge cases of the adaptive strategies (§3.2–§3.3), asserting both the
//! results and the emitted switch *trace events*: overflow exactly at the
//! table budget, empty and single-tuple inputs, all-duplicate and
//! all-distinct keys, and the ARep initial-segment boundary.

use adaptagg::prelude::*;
use adaptagg::storage::HeapFile;

/// One partition holding `(g, v)` rows in the given order.
fn partition(rows: &[(i64, i64)]) -> Vec<HeapFile> {
    let mut f = HeapFile::new(512);
    for &(g, v) in rows {
        f.append(&[Value::Int(g), Value::Int(v)]).unwrap();
    }
    vec![f]
}

fn query() -> AggQuery {
    AggQuery::new(
        vec![0],
        vec![AggSpec::over(AggFunc::Sum, 1), AggSpec::count_star()],
    )
}

fn traced_config(nodes: usize, m: usize) -> ClusterConfig {
    ClusterConfig::new(
        nodes,
        CostParams {
            max_hash_entries: m,
            ..CostParams::paper_default()
        },
    )
    .with_tracing()
}

/// All strategy-switch trace events across the run, as `(node, cause,
/// at_tuple)`.
fn switch_events(out: &RunOutcome) -> Vec<(usize, SwitchCause, u64)> {
    let trace = out.trace.as_ref().expect("tracing was enabled");
    let mut found = Vec::new();
    for node in &trace.nodes {
        for event in &node.events {
            if let TraceEvent::StrategySwitch { cause, at_tuple, .. } = event {
                found.push((node.node, *cause, *at_tuple));
            }
        }
    }
    found
}

#[test]
fn a2p_exactly_at_budget_does_not_switch() {
    // 8 distinct groups, M = 8: the table fills exactly but never
    // overflows, so A2P must behave as plain Two Phase.
    let rows: Vec<(i64, i64)> = (0..64).map(|i| (i % 8, i)).collect();
    let parts = partition(&rows);
    let out = run_algorithm(
        AlgorithmKind::AdaptiveTwoPhase,
        &traced_config(1, 8),
        &parts,
        &query(),
    )
    .unwrap();
    assert_eq!(out.rows.len(), 8);
    assert!(out.adapted_nodes().is_empty(), "no switch at exactly M groups");
    assert!(switch_events(&out).is_empty(), "no switch trace event either");
}

#[test]
fn a2p_one_past_budget_switches_at_the_overflow_tuple() {
    // Groups arrive in order 0,1,…,8: the 9th distinct group (tuple 9,
    // 1-based) is the first rejected insert with M = 8.
    let rows: Vec<(i64, i64)> = (0..64).map(|i| (i % 9, i)).collect();
    let parts = partition(&rows);
    let out = run_algorithm(
        AlgorithmKind::AdaptiveTwoPhase,
        &traced_config(1, 8),
        &parts,
        &query(),
    )
    .unwrap();
    assert_eq!(out.rows.len(), 9);
    // The adaptive event and the trace event agree on the switch point.
    assert_eq!(
        out.nodes[0].events,
        vec![AdaptEvent::SwitchedToRepartitioning { at_tuple: 9 }]
    );
    assert_eq!(
        switch_events(&out),
        vec![(0, SwitchCause::TableFull, 9)]
    );
}

#[test]
fn empty_and_single_tuple_inputs() {
    for rows in [vec![], vec![(7i64, 42i64)]] {
        let q = query();
        let reference = reference_aggregate(&partition(&rows), &q).unwrap();
        for nodes in [1usize, 3] {
            // Spread the (0 or 1) tuples over `nodes` partitions: node 0
            // gets everything, the rest scan empty files.
            let mut parts = partition(&rows);
            parts.resize_with(nodes, || HeapFile::new(512));
            let config = traced_config(nodes, 4);
            for kind in AlgorithmKind::ALL {
                let out = run_algorithm(kind, &config, &parts, &q).unwrap();
                assert_eq!(
                    out.rows, reference,
                    "{kind} at {nodes} nodes on {} tuples",
                    rows.len()
                );
                assert!(switch_events(&out).is_empty(), "{kind}: nothing to switch on");
            }
        }
    }
}

#[test]
fn all_duplicate_keys_never_switch() {
    // One group, tiny budget: the table can never fill.
    let rows: Vec<(i64, i64)> = (0..200).map(|i| (5, i)).collect();
    let out = run_algorithm(
        AlgorithmKind::AdaptiveTwoPhase,
        &traced_config(2, 2),
        &{
            let mut parts = partition(&rows);
            parts.resize_with(2, || HeapFile::new(512));
            parts
        },
        &query(),
    )
    .unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0].aggs[1], Value::Int(200));
    assert!(switch_events(&out).is_empty());
}

#[test]
fn all_distinct_keys_switch_and_stay_exact() {
    // Every key unique: with M = 8 each node overflows at tuple 9.
    let rows: Vec<(i64, i64)> = (0..120).map(|i| (i, 1)).collect();
    let parts = partition(&rows);
    let out = run_algorithm(
        AlgorithmKind::AdaptiveTwoPhase,
        &traced_config(1, 8),
        &parts,
        &query(),
    )
    .unwrap();
    assert_eq!(out.rows.len(), 120);
    assert_eq!(switch_events(&out), vec![(0, SwitchCause::TableFull, 9)]);
}

#[test]
fn arep_below_min_groups_falls_back_exactly_at_init_seg() {
    // First 64 tuples hold 2 < 8 distinct groups: the local verdict fires
    // at precisely tuple 64 and is recorded as a low-cardinality switch.
    let rows: Vec<(i64, i64)> = (0..128).map(|i| (i % 2, i)).collect();
    let parts = partition(&rows);
    let mut cfg = AlgoConfig::default_for(1);
    cfg.arep_init_seg = 64;
    cfg.arep_min_groups = 8;
    let out = run_algorithm_with(
        AlgorithmKind::AdaptiveRepartitioning,
        &traced_config(1, 1000),
        &parts,
        &query(),
        &cfg,
    )
    .unwrap();
    assert_eq!(out.rows.len(), 2);
    assert_eq!(
        out.nodes[0].events,
        vec![AdaptEvent::FellBackToTwoPhase {
            at_tuple: 64,
            local_decision: true,
        }]
    );
    assert_eq!(
        switch_events(&out),
        vec![(0, SwitchCause::LowCardinalityLocal, 64)]
    );
}

#[test]
fn arep_exactly_min_groups_does_not_fall_back() {
    // Exactly 8 distinct groups in the initial segment: the verdict is
    // `< min_groups`, so the boundary case stays with repartitioning.
    let rows: Vec<(i64, i64)> = (0..128).map(|i| (i % 8, i)).collect();
    let parts = partition(&rows);
    let mut cfg = AlgoConfig::default_for(1);
    cfg.arep_init_seg = 64;
    cfg.arep_min_groups = 8;
    let out = run_algorithm_with(
        AlgorithmKind::AdaptiveRepartitioning,
        &traced_config(1, 1000),
        &parts,
        &query(),
        &cfg,
    )
    .unwrap();
    assert_eq!(out.rows.len(), 8);
    assert!(out.nodes[0].events.is_empty(), "boundary case must not fall back");
    assert!(switch_events(&out).is_empty());
}
