//! Scale tests: the paper's analytical configuration (32 nodes) run for
//! real on the simulated cluster, plus larger-than-default relations.
//! These take a few seconds in release mode and guard against anything
//! that only breaks at width (channel fan-in, bus contention, per-node
//! state).

use adaptagg::prelude::*;

#[test]
fn thirty_two_node_cluster_runs_all_strategies() {
    let spec = RelationSpec::uniform(64_000, 5_000);
    let parts = generate_partitions(&spec, 32);
    let query = default_query();
    let reference = reference_aggregate(&parts, &query).unwrap();
    let params = CostParams {
        max_hash_entries: 500,
        ..CostParams::paper_default()
    };
    let config = ClusterConfig::new(32, params);
    for kind in AlgorithmKind::ALL {
        let out = run_algorithm(kind, &config, &parts, &query).expect("run succeeds");
        assert_eq!(out.rows, reference, "{kind} diverged at 32 nodes");
        assert_eq!(out.run.per_node.len(), 32);
    }
}

#[test]
fn measured_scaleup_is_flat_for_adaptive_two_phase() {
    // The engine's answer to Figure 5: per-node load fixed, virtual time
    // roughly flat as the cluster grows (fast network).
    let mut times = Vec::new();
    for nodes in [2usize, 8, 32] {
        let spec = RelationSpec::uniform(4_000 * nodes, 50).with_seed(nodes as u64);
        let parts = generate_partitions(&spec, nodes);
        let config = ClusterConfig::new(nodes, CostParams::paper_default());
        let out = run_algorithm(
            AlgorithmKind::AdaptiveTwoPhase,
            &config,
            &parts,
            &default_query(),
        )
        .expect("run succeeds");
        times.push((nodes, out.elapsed_ms()));
    }
    let t2 = times[0].1;
    let t32 = times[2].1;
    assert!(
        t32 < t2 * 1.3,
        "scaleup broke: {t2} ms at N=2 vs {t32} ms at N=32 ({times:?})"
    );
}

#[test]
fn half_million_tuples_through_the_adaptive_path() {
    // Big enough to hammer the blocking, spill, and merge paths; small
    // enough for CI. A-2P with a tight budget exercises every moving
    // part at once.
    let spec = RelationSpec::uniform(500_000, 60_000);
    let parts = generate_partitions(&spec, 8);
    let params = CostParams {
        max_hash_entries: 2_000,
        ..CostParams::cluster_default()
    };
    let config = ClusterConfig::new(8, params);
    let out = run_algorithm(
        AlgorithmKind::AdaptiveTwoPhase,
        &config,
        &parts,
        &default_query(),
    )
    .expect("run succeeds");
    assert_eq!(out.rows.len(), 60_000);
    assert_eq!(out.adapted_nodes().len(), 8, "every node must switch");
    // Sanity on totals: every base tuple was scanned exactly once.
    let scanned: u64 = out.nodes.iter().map(|n| n.agg.raw_in).sum();
    assert!(scanned >= 500_000);
}
