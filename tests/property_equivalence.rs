//! Property-based integration tests: random relations, random queries,
//! random cluster shapes — every algorithm must equal the reference.

use adaptagg::prelude::*;
use adaptagg::storage::HeapFile;
use proptest::prelude::*;

fn partitions_from(rows: &[(i64, i64)], nodes: usize) -> Vec<HeapFile> {
    let mut parts: Vec<HeapFile> = (0..nodes).map(|_| HeapFile::new(512)).collect();
    for (i, &(g, v)) in rows.iter().enumerate() {
        parts[i % nodes]
            .append(&[Value::Int(g), Value::Int(v)])
            .unwrap();
    }
    parts
}

fn query() -> AggQuery {
    AggQuery::new(
        vec![0],
        vec![
            AggSpec::over(AggFunc::Sum, 1),
            AggSpec::over(AggFunc::Avg, 1),
            AggSpec::over(AggFunc::Min, 1),
            AggSpec::count_star(),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: arbitrary data, arbitrary skew in the group
    /// ids, tiny memory, any cluster size — all nine strategies agree
    /// with the single-node reference.
    #[test]
    fn prop_all_algorithms_equal_reference(
        rows in proptest::collection::vec((-40i64..40, -1000i64..1000), 1..600),
        nodes in 1usize..6,
        m in 1usize..64,
    ) {
        let parts = partitions_from(&rows, nodes);
        let q = query();
        let reference = reference_aggregate(&parts, &q).unwrap();
        let config = ClusterConfig::new(nodes, CostParams {
            max_hash_entries: m,
            ..CostParams::paper_default()
        });
        for kind in AlgorithmKind::ALL {
            let out = run_algorithm(kind, &config, &parts, &q).expect("run succeeds");
            prop_assert_eq!(&out.rows, &reference, "{} diverged", kind);
        }
    }

    /// Results are invariant to the partitioning of the input across
    /// nodes (the algorithms must not depend on placement).
    #[test]
    fn prop_placement_invariance(
        rows in proptest::collection::vec((-20i64..20, -100i64..100), 1..300),
        split in 1usize..5,
    ) {
        let q = query();
        let a = partitions_from(&rows, 4);
        // A different deal: chunk contiguously instead of round-robin.
        let mut b: Vec<HeapFile> = (0..4).map(|_| HeapFile::new(512)).collect();
        let chunk = rows.len().div_ceil(split.min(4));
        for (i, &(g, v)) in rows.iter().enumerate() {
            b[(i / chunk.max(1)).min(3)]
                .append(&[Value::Int(g), Value::Int(v)])
                .unwrap();
        }
        let config = ClusterConfig::new(4, CostParams::paper_default());
        let ra = run_algorithm(AlgorithmKind::AdaptiveTwoPhase, &config, &a, &q).unwrap();
        let rb = run_algorithm(AlgorithmKind::AdaptiveTwoPhase, &config, &b, &q).unwrap();
        prop_assert_eq!(ra.rows, rb.rows);
    }

    /// Duplicate elimination returns exactly the distinct keys.
    #[test]
    fn prop_distinct_is_exact(
        rows in proptest::collection::vec((-30i64..30, 0i64..1), 0..300),
        nodes in 1usize..5,
    ) {
        let parts = partitions_from(&rows, nodes);
        let q = AggQuery::distinct(vec![0]);
        let config = ClusterConfig::new(nodes, CostParams {
            max_hash_entries: 8,
            ..CostParams::paper_default()
        });
        let out = run_algorithm(AlgorithmKind::AdaptiveRepartitioning, &config, &parts, &q)
            .expect("run succeeds");
        let mut expect: Vec<i64> = rows.iter().map(|&(g, _)| g).collect();
        expect.sort_unstable();
        expect.dedup();
        let got: Vec<i64> = out
            .rows
            .iter()
            .map(|r| r.key.values()[0].as_i64().unwrap())
            .collect();
        prop_assert_eq!(got, expect);
    }
}
