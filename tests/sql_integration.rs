//! SQL → engine integration: textual queries compile, run on the
//! cluster, and agree with hand-built queries and the reference.

use adaptagg::model::{DataType, Field, Schema};
use adaptagg::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("g", DataType::Int),
        Field::new("v", DataType::Int),
        Field::new("pad", DataType::Str),
    ])
}

#[test]
fn sql_query_equals_hand_built_query() {
    let spec = RelationSpec::uniform(8_000, 120);
    let parts = generate_partitions(&spec, 4);
    let config = ClusterConfig::new(4, CostParams::paper_default());

    let bound = compile_sql("SELECT g, SUM(v), COUNT(*) FROM r GROUP BY g", &schema()).unwrap();
    assert_eq!(bound.query, default_query());

    let via_sql =
        run_algorithm(AlgorithmKind::AdaptiveTwoPhase, &config, &parts, &bound.query).unwrap();
    let reference = reference_aggregate(&parts, &bound.query).unwrap();
    assert_eq!(via_sql.rows, reference);
    assert_eq!(bound.output_names, vec!["g", "SUM(v)", "COUNT(*)"]);
}

#[test]
fn sql_distinct_runs_as_duplicate_elimination() {
    let spec = RelationSpec::uniform(6_000, 2_000);
    let parts = generate_partitions(&spec, 4);
    let config = ClusterConfig::new(4, CostParams::paper_default());

    let bound = compile_sql("SELECT DISTINCT g FROM r", &schema()).unwrap();
    assert!(bound.query.aggs.is_empty());
    let out = run_algorithm(
        AlgorithmKind::AdaptiveRepartitioning,
        &config,
        &parts,
        &bound.query,
    )
    .unwrap();
    assert_eq!(out.rows.len(), 2_000);
}

#[test]
fn sql_scalar_aggregate_over_every_strategy() {
    let spec = RelationSpec::uniform(4_000, 77);
    let parts = generate_partitions(&spec, 4);
    let config = ClusterConfig::new(4, CostParams::paper_default());

    let bound = compile_sql(
        "SELECT COUNT(*), MIN(v), MAX(v), AVG(v), VAR_POP(v) FROM r",
        &schema(),
    )
    .unwrap();
    let reference = reference_aggregate(&parts, &bound.query).unwrap();
    assert_eq!(reference.len(), 1);
    for kind in AlgorithmKind::ALL {
        let out = run_algorithm(kind, &config, &parts, &bound.query).unwrap();
        assert_eq!(out.rows, reference, "{kind}");
    }
    assert_eq!(
        out_count(&reference),
        4_000,
        "COUNT(*) column should count every row"
    );
}

fn out_count(rows: &[ResultRow]) -> i64 {
    rows[0].aggs[0].as_i64().unwrap()
}

#[test]
fn sql_where_filters_before_aggregation() {
    let spec = RelationSpec::uniform(10_000, 100);
    let parts = generate_partitions(&spec, 4);
    let config = ClusterConfig::new(4, CostParams::paper_default());

    // v is uniform in 0..1000: keep ~30% of rows and a key-range of groups.
    let bound = compile_sql(
        "SELECT g, COUNT(*), SUM(v) FROM r WHERE v < 300 AND g >= 10 GROUP BY g",
        &schema(),
    )
    .unwrap();
    assert_eq!(bound.query.filter.len(), 2);

    let reference = reference_aggregate(&parts, &bound.query).unwrap();
    assert_eq!(reference.len(), 90, "groups 10..100 survive the g filter");
    // Every algorithm agrees on the filtered result.
    for kind in AlgorithmKind::ALL {
        let out = run_algorithm(kind, &config, &parts, &bound.query).unwrap();
        assert_eq!(out.rows, reference, "{kind}");
    }
    // The counts reflect the v filter (~30% of 100 rows per group).
    for row in &reference {
        let n = row.aggs[0].as_i64().unwrap();
        assert!((10..=60).contains(&n), "group count {n} implausible");
    }
}

#[test]
fn sql_where_that_filters_everything_yields_empty() {
    let spec = RelationSpec::uniform(1_000, 10);
    let parts = generate_partitions(&spec, 4);
    let config = ClusterConfig::new(4, CostParams::paper_default());
    let bound = compile_sql("SELECT g, COUNT(*) FROM r WHERE v < -1 GROUP BY g", &schema())
        .unwrap();
    let out =
        run_algorithm(AlgorithmKind::AdaptiveTwoPhase, &config, &parts, &bound.query).unwrap();
    assert!(out.rows.is_empty());
}

#[test]
fn sql_errors_are_surfaced_not_panicked() {
    for bad in [
        "SELECT",
        "SELECT g FROM",
        "SELECT g, SUM(v) FROM r GROUP BY missing",
        "SELECT v FROM r GROUP BY g",
        "SELECT SUM(pad) FROM r",
        "FROM r SELECT g",
    ] {
        assert!(compile_sql(bad, &schema()).is_err(), "{bad} should fail");
    }
}
