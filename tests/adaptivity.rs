//! Behavioural tests of the adaptive machinery: *when* the algorithms
//! switch, fall back, or decide — not just what they compute.

use adaptagg::prelude::*;

fn cluster(nodes: usize, m: usize) -> ClusterConfig {
    ClusterConfig::new(
        nodes,
        CostParams {
            max_hash_entries: m,
            ..CostParams::paper_default()
        },
    )
}

fn switched(events: &[AdaptEvent]) -> Option<u64> {
    events.iter().find_map(|e| match e {
        AdaptEvent::SwitchedToRepartitioning { at_tuple } => Some(*at_tuple),
        _ => None,
    })
}

fn fell_back(events: &[AdaptEvent]) -> Option<(u64, bool)> {
    events.iter().find_map(|e| match e {
        AdaptEvent::FellBackToTwoPhase {
            at_tuple,
            local_decision,
        } => Some((*at_tuple, *local_decision)),
        _ => None,
    })
}

#[test]
fn a2p_switches_iff_local_groups_exceed_memory() {
    let query = default_query();
    // Below M: no switch.
    let spec = RelationSpec::uniform(8_000, 400);
    let parts = generate_partitions(&spec, 4);
    let out = run_algorithm(AlgorithmKind::AdaptiveTwoPhase, &cluster(4, 500), &parts, &query)
        .unwrap();
    assert!(out.adapted_nodes().is_empty());

    // Above M: every node switches, and not before M distinct groups
    // could have been observed.
    let spec = RelationSpec::uniform(8_000, 4_000);
    let parts = generate_partitions(&spec, 4);
    let out = run_algorithm(AlgorithmKind::AdaptiveTwoPhase, &cluster(4, 500), &parts, &query)
        .unwrap();
    assert_eq!(out.adapted_nodes().len(), 4);
    for n in &out.nodes {
        let at = switched(&n.events).expect("switch recorded");
        assert!(at >= 500, "switched after only {at} tuples");
        assert!(at <= 2_000, "switch recorded past the node's input");
    }
}

#[test]
fn a2p_switch_point_tracks_memory_budget() {
    // Larger budget → later switch.
    let query = default_query();
    let spec = RelationSpec::uniform(12_000, 6_000);
    let mut switch_points = Vec::new();
    for m in [100usize, 400, 1_000] {
        let parts = generate_partitions(&spec, 4);
        let out =
            run_algorithm(AlgorithmKind::AdaptiveTwoPhase, &cluster(4, m), &parts, &query)
                .unwrap();
        let avg: f64 = out
            .nodes
            .iter()
            .map(|n| switched(&n.events).unwrap() as f64)
            .sum::<f64>()
            / out.nodes.len() as f64;
        switch_points.push(avg);
    }
    assert!(
        switch_points.windows(2).all(|w| w[0] < w[1]),
        "switch points should grow with M: {switch_points:?}"
    );
}

#[test]
fn a2p_local_phase_never_spills() {
    // A2P's defining guarantee: the scan side replaces overflow I/O with
    // forwarding. Any spill must come from the merge phase, bounded by
    // the merge table size — with G/N < M there is none at all.
    let query = default_query();
    let spec = RelationSpec::uniform(20_000, 1_600); // G/N = 400 < M
    let parts = generate_partitions(&spec, 4);
    let out = run_algorithm(AlgorithmKind::AdaptiveTwoPhase, &cluster(4, 500), &parts, &query)
        .unwrap();
    assert_eq!(out.adapted_nodes().len(), 4, "G_local=1600 > M=500: switches");
    assert_eq!(out.total_spilled(), 0);

    // Plain 2P on the same data spills.
    let parts = generate_partitions(&spec, 4);
    let tp = run_algorithm(AlgorithmKind::TwoPhase, &cluster(4, 500), &parts, &query).unwrap();
    assert!(tp.total_spilled() > 0);
}

#[test]
fn arep_falls_back_locally_on_few_groups() {
    let query = default_query();
    let spec = RelationSpec::uniform(40_000, 20);
    let parts = generate_partitions(&spec, 4);
    let out = run_algorithm(
        AlgorithmKind::AdaptiveRepartitioning,
        &cluster(4, 1_000),
        &parts,
        &query,
    )
    .unwrap();
    assert_eq!(out.adapted_nodes().len(), 4, "all nodes must leave Rep mode");
    // At least one node decided from its own observation (the others may
    // have been told by the broadcast, depending on timing).
    assert!(out
        .nodes
        .iter()
        .any(|n| matches!(fell_back(&n.events), Some((_, true)))));
}

#[test]
fn arep_stays_repartitioning_on_many_groups() {
    let query = default_query();
    let spec = RelationSpec::uniform(40_000, 15_000);
    let parts = generate_partitions(&spec, 4);
    let out = run_algorithm(
        AlgorithmKind::AdaptiveRepartitioning,
        &cluster(4, 50_000),
        &parts,
        &query,
    )
    .unwrap();
    assert!(
        out.adapted_nodes().is_empty(),
        "unexpected fallback: {:?}",
        out.nodes.iter().map(|n| &n.events).collect::<Vec<_>>()
    );
}

#[test]
fn sampling_decision_respects_threshold() {
    let query = default_query();
    let config = cluster(4, 10_000);
    // Default threshold for 4 nodes is 40 groups.
    for (groups, expect_rep) in [(10usize, false), (20_000usize, true)] {
        let spec = RelationSpec::uniform(40_000, groups);
        let parts = generate_partitions(&spec, 4);
        let out = run_algorithm(AlgorithmKind::Sampling, &config, &parts, &query).unwrap();
        for n in &out.nodes {
            let chose_rep = n.events.iter().any(|e| {
                matches!(
                    e,
                    AdaptEvent::SamplingChose(AlgorithmChoice::Repartitioning)
                )
            });
            assert_eq!(chose_rep, expect_rep, "groups = {groups}");
        }
    }
}

#[test]
fn output_skew_nodes_decide_independently() {
    // §6.2: under output skew, exactly the group-rich nodes switch.
    let spec = OutputSkewSpec::new(6, 3_000, 2_400, 3);
    let parts = spec.generate_partitions();
    let config = cluster(6, 150);
    let out = run_algorithm(
        AlgorithmKind::AdaptiveTwoPhase,
        &config,
        &parts,
        &default_query(),
    )
    .unwrap();
    assert_eq!(out.adapted_nodes(), vec![3, 4, 5]);
}

#[test]
fn custom_config_tunes_arep_fallback() {
    let query = default_query();
    let spec = RelationSpec::uniform(40_000, 300);
    let parts = generate_partitions(&spec, 4);
    let config = cluster(4, 10_000);

    // min_groups below the true count: stays Rep.
    let stay = AlgoConfig::default_for(4).with_crossover_threshold(100);
    let out = run_algorithm_with(
        AlgorithmKind::AdaptiveRepartitioning,
        &config,
        &parts,
        &query,
        &stay,
    )
    .unwrap();
    assert!(out.adapted_nodes().is_empty());

    // min_groups above the true count: falls back.
    let fall = AlgoConfig::default_for(4).with_crossover_threshold(1_000);
    let out = run_algorithm_with(
        AlgorithmKind::AdaptiveRepartitioning,
        &config,
        &parts,
        &query,
        &fall,
    )
    .unwrap();
    assert_eq!(out.adapted_nodes().len(), 4);
}
