//! Chaos harness: every algorithm, under any seeded fault schedule,
//! either produces exactly the serial reference result or fails fast with
//! a clean, correctly-attributed typed error. No hangs, no wrong answers,
//! no panics.
//!
//! The schedules are fully deterministic given their seed (see
//! `adaptagg_net::FaultPlan`), so every run here is reproducible: a
//! failing seed can be replayed byte-for-byte.
//!
//! The suite runs on the high-speed network model. The shared-bus model
//! works under faults too, but its bus ledger books transfers in real
//! thread-interleaving order, so its *timings* are not run-to-run
//! reproducible — the determinism assertions would be meaningless there.

use adaptagg::exec::{ExecError, FaultPlan};
use adaptagg::prelude::*;
use std::time::Duration;

const NODES: usize = 4;
const TUPLES: usize = 4_000;
const GROUPS: usize = 120;

/// The paper's six strategies (§2–§3) — the chaos target set.
const SIX: [AlgorithmKind; 6] = [
    AlgorithmKind::CentralizedTwoPhase,
    AlgorithmKind::TwoPhase,
    AlgorithmKind::Repartitioning,
    AlgorithmKind::Sampling,
    AlgorithmKind::AdaptiveTwoPhase,
    AlgorithmKind::AdaptiveRepartitioning,
];

fn chaos_config(plan: FaultPlan) -> ClusterConfig {
    ClusterConfig::new(NODES, CostParams::paper_default())
        .with_fault_plan(plan)
        // Generous for a healthy run (each takes well under a second of
        // real time) yet bounds every blocking receive, so a hang would
        // fail the suite instead of wedging it.
        .with_watchdog(Duration::from_secs(10))
}

/// ≥ 100 seeded fault schedules across all six algorithms: 25 seeds × 6.
/// Runs whose schedule contains no crash must match the reference
/// exactly — link faults (drop/dup/reorder) and slowdowns perturb timing,
/// never results. Runs with scheduled crashes either still match (the
/// crash point can lie beyond the node's partition) or fail with the
/// *injected crash* as the reported error — never a cascade, never a
/// hang, never a wrong answer.
#[test]
fn every_schedule_is_exact_or_cleanly_failed() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();
    let reference = reference_aggregate(&parts, &query).unwrap();

    let mut runs = 0;
    let mut crashed = 0;
    for seed in 0..25u64 {
        let plan = FaultPlan::random(seed, NODES);
        for kind in SIX {
            runs += 1;
            let config = chaos_config(plan.clone());
            match run_algorithm(kind, &config, &parts, &query) {
                Ok(out) => {
                    assert_eq!(
                        out.rows, reference,
                        "{kind} under seed {seed} returned wrong rows"
                    );
                }
                Err(e) => {
                    assert!(
                        plan.has_crash(),
                        "{kind} under crash-free seed {seed} failed: {e}"
                    );
                    match e {
                        ExecError::InjectedCrash { node, .. } => {
                            assert!(
                                plan.node(node).crash_at_tuple.is_some(),
                                "{kind} seed {seed}: crash attributed to node {node}, \
                                 which had none scheduled"
                            );
                        }
                        other => panic!(
                            "{kind} seed {seed}: expected the injected crash to be \
                             the attributed error, got {other:?}"
                        ),
                    }
                    crashed += 1;
                }
            }
        }
    }
    assert!(runs >= 100, "only {runs} chaos runs");
    // FaultPlan::random schedules crashes in ~20% of node slots; with 25
    // seeds both outcomes must appear, or the harness is not exercising
    // the failure path at all.
    assert!(crashed > 0, "no schedule ever crashed — harness too tame");
    assert!(
        crashed < runs,
        "every schedule crashed — no exactness coverage"
    );
}

/// Same seed ⇒ same outcome: identical rows on success, the identical
/// error (same variant, node, and tuple position) on failure. This is
/// what makes a chaos failure debuggable — replay the seed.
///
/// Outcome, not timing: the fault *schedule* is seed-exact (per-link
/// RNG streams drawn in sender order), but a receiver observes message
/// timestamps in physical-arrival order, so the interleaving of
/// `Clock::observe` with local cost recording — and hence the exact
/// virtual clock readings — can vary run to run once link faults skew
/// timestamps. Results and failure attribution never depend on that
/// interleaving; clock readings can. The zero-cost test below pins
/// timings exactly for the fault-free case.
#[test]
fn chaos_outcomes_are_deterministic_per_seed() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();

    for seed in [3u64, 7, 11, 19, 23] {
        let plan = FaultPlan::random(seed, NODES);
        for kind in SIX {
            let once = run_algorithm(kind, &chaos_config(plan.clone()), &parts, &query);
            let twice = run_algorithm(kind, &chaos_config(plan.clone()), &parts, &query);
            match (once, twice) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.rows, b.rows, "{kind} seed {seed}: rows differ");
                }
                (Err(a), Err(b)) => {
                    assert_eq!(a, b, "{kind} seed {seed}: errors differ");
                }
                (a, b) => panic!(
                    "{kind} seed {seed}: outcome flipped between runs: {:?} vs {:?}",
                    a.map(|r| r.rows.len()),
                    b.map(|r| r.rows.len())
                ),
            }
        }
    }
}

/// Link noise alone (no crashes) on a run big enough to exercise paging,
/// reordering, and retransmission on every link: results exact for all
/// six, and the per-node traffic counters prove the noise actually
/// landed (this is a chaos test, not a no-op).
#[test]
fn link_noise_preserves_exactness_and_is_visible_in_stats() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();
    let reference = reference_aggregate(&parts, &query).unwrap();

    let noisy = FaultPlan::new(99).with_link_faults(adaptagg::net::LinkFaults {
        drop_prob: 0.15,
        dup_prob: 0.15,
        reorder_prob: 0.15,
    });
    for kind in SIX {
        let out = run_algorithm(kind, &chaos_config(noisy.clone()), &parts, &query)
            .unwrap_or_else(|e| panic!("{kind} failed under link noise: {e}"));
        assert_eq!(out.rows, reference, "{kind} lost exactness under link noise");
        let injected: u64 = out
            .run
            .per_node
            .iter()
            .map(|n| n.net.injected_drops + n.net.injected_dups + n.net.injected_reorders)
            .sum();
        assert!(injected > 0, "{kind}: no fault ever fired at 15% link noise");
    }
}

/// A disabled fault plan is free: same rows, same traffic counters, and
/// virtual timings equal to far below any fault's cost, compared with a
/// config that never heard of fault injection (`ClusterConfig::new`
/// defaults to `FaultPlan::none()`).
///
/// Two caveats keep this honest about *pre-existing* run-to-run jitter
/// that has nothing to do with the fault layer (the per-message
/// zero-draw property is unit-tested bitwise in `net::fabric`):
/// timings are compared within 1e-6 ms, because a receiver observes
/// message timestamps in physical-arrival order and that interleaving
/// perturbs float summation in the last bits between *any* two runs;
/// and Sampling and Adaptive Repartitioning are excluded from the
/// timing check entirely, because their mid-run waits (the sampling
/// decision, the fallback poll) buffer racing traffic in
/// arrival-dependent order, which legitimately shifts their Lamport
/// bookkeeping by whole milliseconds between any two runs — results
/// and traffic stay exact.
#[test]
fn disabled_fault_injection_is_zero_cost() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();

    let timing_stable: [AlgorithmKind; 4] = [
        AlgorithmKind::CentralizedTwoPhase,
        AlgorithmKind::TwoPhase,
        AlgorithmKind::Repartitioning,
        AlgorithmKind::AdaptiveTwoPhase,
    ];
    for kind in SIX {
        let default_cfg = ClusterConfig::new(NODES, CostParams::paper_default());
        let explicit_none = chaos_config(FaultPlan::none());
        let a = run_algorithm(kind, &default_cfg, &parts, &query).unwrap();
        let b = run_algorithm(kind, &explicit_none, &parts, &query).unwrap();
        assert_eq!(a.rows, b.rows, "{kind}: rows changed");
        for (na, nb) in a.run.per_node.iter().zip(&b.run.per_node) {
            assert_eq!(na.net, nb.net, "{kind}: traffic counters changed");
        }
        if !timing_stable.contains(&kind) {
            continue;
        }
        assert!(
            (a.elapsed_ms() - b.elapsed_ms()).abs() < 1e-6,
            "{kind}: timing changed ({} vs {})",
            a.elapsed_ms(),
            b.elapsed_ms()
        );
        for (na, nb) in a.run.per_node.iter().zip(&b.run.per_node) {
            assert!(
                (na.clock_ms - nb.clock_ms).abs() < 1e-6,
                "{kind}: node clock changed ({} vs {})",
                na.clock_ms,
                nb.clock_ms
            );
        }
    }
}

fn recovering_config(plan: FaultPlan) -> ClusterConfig {
    chaos_config(plan).with_recovery(RecoveryPolicy::default())
}

/// The recovery tentpole, across the full schedule matrix: with recovery
/// enabled, the same 150 seeded schedules that fail fast above must now
/// *complete* and match the serial reference exactly — a crashed node's
/// partition is reassigned and replayed past its checkpoint. The only
/// admissible failure is `RecoveryExhausted` on a schedule whose crashes
/// genuinely keep killing nodes (re-armed thresholds can fell survivors
/// that inherit bigger scans), and such a schedule must actually contain
/// crashes.
#[test]
fn recovery_completes_every_schedule_or_exhausts_honestly() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();
    let reference = reference_aggregate(&parts, &query).unwrap();

    let mut recovered = 0;
    for seed in 0..25u64 {
        let plan = FaultPlan::random(seed, NODES);
        for kind in SIX {
            let config = recovering_config(plan.clone());
            match run_algorithm(kind, &config, &parts, &query) {
                Ok(out) => {
                    assert_eq!(
                        out.rows, reference,
                        "{kind} seed {seed}: recovered run returned wrong rows"
                    );
                    if out.run.recovery.recovered() {
                        assert!(
                            plan.has_crash(),
                            "{kind} seed {seed}: recovery fired without a crash"
                        );
                        assert!(
                            !out.run.recovery.dead_nodes.is_empty(),
                            "{kind} seed {seed}: attempts > 1 but no node removed"
                        );
                        recovered += 1;
                    }
                }
                Err(ExecError::RecoveryExhausted { attempts, .. }) => {
                    assert!(
                        plan.has_crash(),
                        "{kind} seed {seed}: exhausted without any scheduled crash"
                    );
                    assert!(attempts > 1, "{kind} seed {seed}: gave up after one attempt");
                }
                Err(other) => panic!(
                    "{kind} seed {seed}: recovery must complete or exhaust, got {other:?}"
                ),
            }
        }
    }
    assert!(
        recovered > 0,
        "no schedule ever needed recovery — harness too tame"
    );
}

/// Single-node crashes — the acceptance scenario — must *all* recover:
/// every algorithm, every crash site, exact rows, exactly one extra
/// attempt, and the victim correctly named in the recovery report.
#[test]
fn single_node_crashes_recover_exactly_on_every_algorithm() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();
    let reference = reference_aggregate(&parts, &query).unwrap();

    for kind in SIX {
        for node in 0..NODES {
            let plan = FaultPlan::new(node as u64).with_crash(node, 50);
            let out = run_algorithm(kind, &recovering_config(plan), &parts, &query)
                .unwrap_or_else(|e| {
                    panic!("{kind}: crash on node {node} did not recover: {e}")
                });
            assert_eq!(out.rows, reference, "{kind}: wrong rows after losing {node}");
            assert_eq!(
                out.run.recovery.attempts, 2,
                "{kind}: one crash must cost exactly one retry"
            );
            assert_eq!(
                out.run.recovery.dead_nodes,
                vec![node],
                "{kind}: wrong victim for a crash on node {node}"
            );
            assert!(
                out.run.recovery.reassigned_partitions >= 1,
                "{kind}: the victim's partition was never reassigned"
            );
            assert!(
                out.run.elapsed_with_recovery_ms() > out.run.elapsed_ms(),
                "{kind}: recovery cost invisible in the virtual clock"
            );
        }
    }
}

/// Recovery outcomes are as reproducible as fail-stop ones: same seed ⇒
/// same rows and the same number of attempts (clock readings may differ —
/// see the determinism caveat above).
#[test]
fn recovery_outcomes_are_deterministic_per_seed() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();

    for seed in [3u64, 7, 11, 19, 23] {
        let plan = FaultPlan::random(seed, NODES);
        for kind in SIX {
            let once = run_algorithm(kind, &recovering_config(plan.clone()), &parts, &query);
            let twice = run_algorithm(kind, &recovering_config(plan.clone()), &parts, &query);
            match (once, twice) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.rows, b.rows, "{kind} seed {seed}: rows differ");
                    assert_eq!(
                        a.run.recovery.attempts, b.run.recovery.attempts,
                        "{kind} seed {seed}: attempt count differs"
                    );
                }
                (Err(a), Err(b)) => {
                    assert_eq!(a, b, "{kind} seed {seed}: errors differ");
                }
                (a, b) => panic!(
                    "{kind} seed {seed}: outcome flipped between runs: {:?} vs {:?}",
                    a.map(|r| r.rows.len()),
                    b.map(|r| r.rows.len())
                ),
            }
        }
    }
}

/// Every crash schedule, on every algorithm, surfaces within the
/// watchdog deadline — the suite completing at all is most of the proof,
/// but check the error shape too: a crash anywhere must never surface as
/// a NodePanic (the pre-fault failure mode) or hang into a watchdog.
/// (Recovery stays *off* here: these fail-stop semantics are the
/// contract for `ClusterConfig`s that never opted into recovery.)
#[test]
fn targeted_crashes_fail_fast_on_every_algorithm() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();

    for kind in SIX {
        for node in 0..NODES {
            let plan = FaultPlan::new(node as u64).with_crash(node, 50);
            let err = run_algorithm(kind, &chaos_config(plan), &parts, &query)
                .expect_err("a crash at tuple 50 must fail the run");
            assert_eq!(
                err,
                ExecError::InjectedCrash { node, at_tuple: 50 },
                "{kind}: wrong error for a crash on node {node}"
            );
        }
    }
}

/// Transport parity: the chaos contract is a property of the
/// reliability layer (`Endpoint`), not of the wire under it. The same
/// seeded schedules, run over real TCP loopback sockets instead of the
/// in-process channel fabric, must produce the same outcome — identical
/// rows on success, the identical typed error on failure. (A reduced
/// seed set: every TCP run establishes a real 4-node socket mesh, which
/// is wall-clock-expensive next to a channel fabric.)
#[test]
fn chaos_outcomes_match_across_transports() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();

    for seed in [0u64, 5, 9] {
        let plan = FaultPlan::random(seed, NODES);
        for kind in SIX {
            let inproc = run_algorithm(kind, &chaos_config(plan.clone()), &parts, &query);
            let tcp_cfg = chaos_config(plan.clone())
                .with_transport(adaptagg::net::TransportKind::TcpLoopback);
            let tcp = run_algorithm(kind, &tcp_cfg, &parts, &query);
            match (inproc, tcp) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.rows, b.rows,
                        "{kind} seed {seed}: rows differ across transports"
                    );
                }
                (Err(a), Err(b)) => {
                    // When the schedule injects several crashes, which
                    // one the driver observes *first* depends on real-
                    // time arrival order, which kernel socket scheduling
                    // perturbs under load (DESIGN.md §12.5: TCP pins
                    // outcomes, not interleavings). Two errors therefore
                    // match if each names a crash the plan actually
                    // scheduled; any other mismatch is a parity break.
                    let scheduled = |e: &ExecError| match e {
                        ExecError::InjectedCrash { node, at_tuple } => {
                            plan.node(*node).crash_at_tuple == Some(*at_tuple)
                        }
                        _ => false,
                    };
                    if !(scheduled(&a) && scheduled(&b)) {
                        assert_eq!(
                            a, b,
                            "{kind} seed {seed}: errors differ across transports"
                        );
                    }
                }
                (a, b) => panic!(
                    "{kind} seed {seed}: outcome flipped across transports: \
                     in-process {:?} vs tcp {:?}",
                    a.map(|r| r.rows.len()),
                    b.map(|r| r.rows.len())
                ),
            }
        }
    }
}

/// The acceptance crash scenario over the TCP backend: a node crash on
/// every algorithm recovers to exact rows through the same reassignment
/// machinery, with the victim named — proving the recovery loop from
/// PR 2 neither knows nor cares what wire it runs over.
#[test]
fn single_crash_recovers_exactly_over_tcp_loopback() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();
    let reference = reference_aggregate(&parts, &query).unwrap();

    for kind in SIX {
        let plan = FaultPlan::new(1).with_crash(1, 50);
        let config = recovering_config(plan)
            .with_transport(adaptagg::net::TransportKind::TcpLoopback);
        let out = run_algorithm(kind, &config, &parts, &query)
            .unwrap_or_else(|e| panic!("{kind} over tcp: crash did not recover: {e}"));
        assert_eq!(out.rows, reference, "{kind} over tcp: wrong rows");
        assert_eq!(out.run.recovery.attempts, 2, "{kind} over tcp");
        assert_eq!(out.run.recovery.dead_nodes, vec![1], "{kind} over tcp");
    }
}
