//! Virtual-time invariants: the simulated costs must order the algorithms
//! the way the paper's analysis says they order, and the accounting
//! itself must be internally consistent.

use adaptagg::prelude::*;

fn run(
    kind: AlgorithmKind,
    parts: &[adaptagg::storage::HeapFile],
    nodes: usize,
    params: CostParams,
) -> RunOutcome {
    let config = ClusterConfig::new(nodes, params);
    run_algorithm(kind, &config, parts, &default_query()).expect("run succeeds")
}

#[test]
fn repartitioning_ships_more_than_two_phase_at_low_selectivity() {
    let spec = RelationSpec::uniform(20_000, 50);
    let parts = generate_partitions(&spec, 8);
    let tp = run(AlgorithmKind::TwoPhase, &parts, 8, CostParams::paper_default());
    let rep = run(
        AlgorithmKind::Repartitioning,
        &parts,
        8,
        CostParams::paper_default(),
    );
    // 2P ships ~groups·N partials; Rep ships the whole relation.
    assert!(tp.run.total_net().tuples_sent < 1_000);
    assert_eq!(rep.run.total_net().tuples_sent, 20_000);
    assert!(tp.elapsed_ms() < rep.elapsed_ms());
}

#[test]
fn shared_bus_is_slower_than_fast_network_for_repartitioning() {
    let spec = RelationSpec::uniform(20_000, 2_000);
    let parts = generate_partitions(&spec, 8);
    let fast = run(
        AlgorithmKind::Repartitioning,
        &parts,
        8,
        CostParams::paper_default(),
    );
    let slow = run(
        AlgorithmKind::Repartitioning,
        &parts,
        8,
        CostParams::cluster_default(),
    );
    assert!(
        slow.elapsed_ms() > fast.elapsed_ms() * 1.5,
        "bus {} vs fast {}",
        slow.elapsed_ms(),
        fast.elapsed_ms()
    );
    // The bus was genuinely occupied.
    assert!(slow.run.bus_busy_ms > 0.0);
    assert_eq!(fast.run.bus_busy_ms, 0.0);
}

#[test]
fn virtual_time_is_deterministic_for_static_algorithms() {
    let spec = RelationSpec::uniform(10_000, 700);
    let parts = generate_partitions(&spec, 4);
    for kind in [
        AlgorithmKind::CentralizedTwoPhase,
        AlgorithmKind::TwoPhase,
        AlgorithmKind::Repartitioning,
    ] {
        let a = run(kind, &parts, 4, CostParams::paper_default());
        let b = run(kind, &parts, 4, CostParams::paper_default());
        assert_eq!(
            a.elapsed_ms(),
            b.elapsed_ms(),
            "{kind} virtual time not reproducible"
        );
        for (x, y) in a.run.per_node.iter().zip(&b.run.per_node) {
            assert_eq!(x.clock_ms, y.clock_ms, "{kind} node clock differs");
        }
    }
}

#[test]
fn breakdown_sums_to_clock() {
    let spec = RelationSpec::uniform(8_000, 500);
    let parts = generate_partitions(&spec, 4);
    let out = run(AlgorithmKind::TwoPhase, &parts, 4, CostParams::cluster_default());
    for r in &out.run.per_node {
        let total = r.breakdown.total_ms();
        assert!(
            (total - r.clock_ms).abs() < 1e-6,
            "node {}: breakdown {total} != clock {}",
            r.node,
            r.clock_ms
        );
    }
}

#[test]
fn bus_occupancy_matches_pages_sent() {
    let spec = RelationSpec::uniform(6_000, 600);
    let parts = generate_partitions(&spec, 4);
    let out = run(
        AlgorithmKind::Repartitioning,
        &parts,
        4,
        CostParams::cluster_default(),
    );
    let pages = out.run.total_net().pages_sent() as f64;
    assert!(
        (out.run.bus_busy_ms - pages * 2.0).abs() < 1e-6,
        "bus busy {} vs {} pages x 2ms",
        out.run.bus_busy_ms,
        pages
    );
}

#[test]
fn more_memory_never_hurts_two_phase() {
    let spec = RelationSpec::uniform(16_000, 3_000);
    let mut times = Vec::new();
    for m in [100usize, 1_000, 10_000] {
        let parts = generate_partitions(&spec, 4);
        let out = run(
            AlgorithmKind::TwoPhase,
            &parts,
            4,
            CostParams {
                max_hash_entries: m,
                ..CostParams::paper_default()
            },
        );
        times.push((m, out.elapsed_ms(), out.total_spilled()));
    }
    assert!(times[0].2 > times[2].2, "spill must shrink with memory");
    assert!(
        times[0].1 > times[2].1,
        "2P with M=100 ({} ms) should be slower than with M=10000 ({} ms)",
        times[0].1,
        times[2].1
    );
}

#[test]
fn waiting_shows_up_under_input_skew() {
    // One node has 3x the data; the others finish their scans and wait
    // for its partials. Final clocks equalize (that is what waiting
    // means), but the *work* distribution shows the skew, and the
    // non-skewed nodes accumulate wait time.
    let spec = InputSkewSpec::new(4, 4_000, 100);
    let parts = spec.generate_partitions();
    let out = run(AlgorithmKind::TwoPhase, &parts, 4, CostParams::paper_default());
    assert!(
        out.run.work_imbalance() > 1.5,
        "work imbalance {}",
        out.run.work_imbalance()
    );
    // The skewed node (0) does the most work and never waits long; a
    // non-skewed node waits for it.
    let w0 = out.run.per_node[0].breakdown.cpu_ms + out.run.per_node[0].breakdown.io_ms;
    let w1 = out.run.per_node[1].breakdown.cpu_ms + out.run.per_node[1].breakdown.io_ms;
    assert!(w0 > 2.0 * w1, "node0 work {w0} vs node1 {w1}");
    assert!(out.run.per_node[1].breakdown.wait_ms > out.run.per_node[0].breakdown.wait_ms);
}

#[test]
fn phase_marks_split_the_timeline() {
    let spec = RelationSpec::uniform(8_000, 400);
    let parts = generate_partitions(&spec, 4);
    for kind in AlgorithmKind::ALL {
        let out = run(kind, &parts, 4, CostParams::paper_default());
        for r in &out.run.per_node {
            // C2P ships to a coordinator: every node still marks phase 1.
            let p1 = r
                .mark_ms("phase1")
                .unwrap_or_else(|| panic!("{kind}: node {} has no phase1 mark", r.node));
            assert!(p1 > 0.0, "{kind}: phase1 at 0");
            assert!(
                p1 <= r.clock_ms + 1e-9,
                "{kind}: phase1 {p1} after clock end {}",
                r.clock_ms
            );
        }
    }
}

#[test]
fn measured_phase_split_matches_the_models_proportions() {
    // Cross-validation at phase granularity: the model's phase-1 share of
    // total time and the engine's phase-1 share agree within a factor.
    let spec = RelationSpec::uniform(40_000, 50);
    let parts = generate_partitions(&spec, 8);
    let out = run(AlgorithmKind::TwoPhase, &parts, 8, CostParams::paper_default());
    let p1: f64 = out
        .run
        .per_node
        .iter()
        .map(|r| r.mark_ms("phase1").unwrap())
        .fold(0.0, f64::max);
    let measured_share = p1 / out.elapsed_ms();

    let model = adaptagg::cost::ModelConfig {
        params: CostParams::paper_default(),
        nodes: 8,
        tuples: 40_000.0,
        io_enabled: true,
    };
    let b = adaptagg::cost::CostAlgorithm::TwoPhase.cost(&model, 50.0 / 40_000.0);
    let model_share = b.phases[0].total_ms() / b.total_ms();

    assert!(
        (measured_share - model_share).abs() < 0.2,
        "phase-1 share: measured {measured_share:.2} vs model {model_share:.2}"
    );
}

#[test]
fn elapsed_is_max_of_node_clocks() {
    let spec = RelationSpec::uniform(5_000, 100);
    let parts = generate_partitions(&spec, 4);
    let out = run(AlgorithmKind::TwoPhase, &parts, 4, CostParams::paper_default());
    let max = out
        .run
        .per_node
        .iter()
        .map(|r| r.clock_ms)
        .fold(0.0f64, f64::max);
    assert_eq!(out.elapsed_ms(), max);
}
