//! Property-based differential oracle: randomized schemas, cardinalities,
//! skews and cluster shapes — every strategy must be bit-identical to the
//! single-node serial reference, including DISTINCT and the multi-column
//! AVG / VAR_POP partial-state merges.
//!
//! This suite differs from `property_equivalence.rs` in three ways: the
//! key schema itself is randomized (one or two key columns), the group-id
//! distribution is optionally skewed (quadratic concentration, so a few
//! groups absorb most tuples), and every algorithm is checked at three
//! cluster sizes per case rather than one drawn size.

use adaptagg::prelude::*;
use adaptagg::storage::HeapFile;
use proptest::prelude::*;

/// Every algorithm is exercised at each of these cluster sizes.
const NODE_COUNTS: [usize; 3] = [1, 3, 6];

/// Round-robin rows across `nodes` simulated disks.
fn build_partitions(rows: &[Vec<Value>], nodes: usize) -> Vec<HeapFile> {
    let mut parts: Vec<HeapFile> = (0..nodes).map(|_| HeapFile::new(512)).collect();
    for (i, row) in rows.iter().enumerate() {
        parts[i % nodes].append(row).unwrap();
    }
    parts
}

/// Map a raw draw onto a group id in `0..card`, optionally skewed: the
/// quadratic transform concentrates mass on low ids (a cheap stand-in for
/// the paper's output-skew scenarios), while the uniform branch is the
/// modulo the generator crates use.
fn group_id(raw: u32, card: usize, skewed: bool) -> i64 {
    if skewed {
        let z = raw as f64 / u32::MAX as f64;
        ((z * z * card as f64) as i64).min(card as i64 - 1)
    } else {
        (raw as usize % card) as i64
    }
}

/// Materialize rows: `[key1, (key2,) v]` — key width is part of the
/// randomized schema.
fn build_rows(raws: &[(u32, i64)], card: usize, skewed: bool, two_col_key: bool) -> Vec<Vec<Value>> {
    raws.iter()
        .map(|&(g, v)| {
            let k1 = group_id(g, card, skewed);
            if two_col_key {
                // The second key column subdivides groups, so the true
                // cardinality is up to 3 × card.
                vec![Value::Int(k1), Value::Int((g % 3) as i64), Value::Int(v)]
            } else {
                vec![Value::Int(k1), Value::Int(v)]
            }
        })
        .collect()
}

fn agg_query(two_col_key: bool) -> AggQuery {
    let (keys, val) = if two_col_key {
        (vec![0, 1], 2)
    } else {
        (vec![0], 1)
    };
    AggQuery::new(
        keys,
        vec![
            AggSpec::over(AggFunc::Sum, val),
            AggSpec::over(AggFunc::Avg, val),
            AggSpec::over(AggFunc::Min, val),
            AggSpec::over(AggFunc::Max, val),
            AggSpec::over(AggFunc::VarPop, val),
            AggSpec::count_star(),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline differential property: arbitrary schema/cardinality/
    /// skew, tight memory, all nine strategies × three cluster sizes
    /// equal the serial reference (which exercises the AVG and VAR_POP
    /// partial-state merges on every comparison).
    #[test]
    fn prop_oracle_all_algorithms_all_node_counts(
        raws in proptest::collection::vec((0u32..u32::MAX, -1000i64..1000), 1..400),
        card in 1usize..150,
        skew_bit in 0u8..2,
        key_bit in 0u8..2,
        m in 4usize..96,
    ) {
        let skewed = skew_bit == 1;
        let two_col_key = key_bit == 1;
        let rows = build_rows(&raws, card, skewed, two_col_key);
        let q = agg_query(two_col_key);
        let single = build_partitions(&rows, 1);
        let reference = reference_aggregate(&single, &q).unwrap();
        for nodes in NODE_COUNTS {
            let parts = build_partitions(&rows, nodes);
            let config = ClusterConfig::new(nodes, CostParams {
                max_hash_entries: m,
                ..CostParams::paper_default()
            });
            for kind in AlgorithmKind::ALL {
                let out = run_algorithm(kind, &config, &parts, &q).expect("run succeeds");
                prop_assert_eq!(
                    &out.rows, &reference,
                    "{} diverged at {} nodes (card {}, skewed {}, 2-col {})",
                    kind, nodes, card, skewed, two_col_key
                );
            }
        }
    }

    /// The morsel engine under the same differential microscope: with
    /// worker threads the result rows must still equal the serial
    /// reference at every cluster size, and on the single node (where
    /// message arrival is deterministic) the virtual clock must
    /// reproduce the serial figure bit-for-bit.
    #[test]
    fn prop_oracle_parallel_threads_match_serial(
        raws in proptest::collection::vec((0u32..u32::MAX, -1000i64..1000), 50..400),
        card in 1usize..150,
        key_bit in 0u8..2,
        threads_ix in 0usize..3,
    ) {
        let threads = [2usize, 4, 8][threads_ix];
        let two_col_key = key_bit == 1;
        let rows = build_rows(&raws, card, false, two_col_key);
        let q = agg_query(two_col_key);
        let single = build_partitions(&rows, 1);
        let reference = reference_aggregate(&single, &q).unwrap();
        for nodes in NODE_COUNTS {
            let parts = build_partitions(&rows, nodes);
            let base = ClusterConfig::new(nodes, CostParams::paper_default());
            for kind in AlgorithmKind::ALL {
                let par = run_algorithm(kind, &base.clone().with_threads(threads), &parts, &q)
                    .expect("parallel run succeeds");
                prop_assert_eq!(
                    &par.rows, &reference,
                    "{} diverged from the oracle at {} nodes, {} threads",
                    kind, nodes, threads
                );
                if nodes == 1 {
                    let serial = run_algorithm(kind, &base.clone().with_threads(1), &parts, &q)
                        .expect("serial run succeeds");
                    prop_assert_eq!(
                        serial.elapsed_ms().to_bits(),
                        par.elapsed_ms().to_bits(),
                        "{}: virtual time diverged at {} threads ({} vs {})",
                        kind, threads, serial.elapsed_ms(), par.elapsed_ms()
                    );
                }
            }
        }
    }

    /// Batch-vs-row differential: the columnar fast path (the default)
    /// must be bit-identical to the row-at-a-time compatibility path —
    /// result rows at every cluster size, and the virtual clock on the
    /// single node (multi-node clocks are compared by the
    /// `cost_invariance` pins instead: algorithms that race phase-1
    /// traffic against the decision broadcast, e.g. Sampling, have
    /// run-to-run clock jitter at >1 node even on a fixed path, same as
    /// `prop_oracle_parallel_threads_match_serial` above). `m` ranges
    /// down to budgets far below the group cardinality, so overflow
    /// spooling and its replay run under both paths.
    #[test]
    fn prop_oracle_batch_matches_row(
        raws in proptest::collection::vec((0u32..u32::MAX, -1000i64..1000), 50..400),
        card in 1usize..150,
        skew_bit in 0u8..2,
        key_bit in 0u8..2,
        threads_ix in 0usize..3,
        m in 4usize..96,
    ) {
        let threads = [1usize, 2, 4][threads_ix];
        let two_col_key = key_bit == 1;
        let rows = build_rows(&raws, card, skew_bit == 1, two_col_key);
        let q = agg_query(two_col_key);
        // Pass 1: force the row-at-a-time path everywhere.
        std::env::set_var("ADAPTAGG_COLUMNAR", "row");
        let mut row_runs = Vec::new();
        for nodes in NODE_COUNTS {
            let parts = build_partitions(&rows, nodes);
            let config = ClusterConfig::new(nodes, CostParams {
                max_hash_entries: m,
                ..CostParams::paper_default()
            })
            .with_threads(threads);
            for kind in AlgorithmKind::ALL {
                let out = run_algorithm(kind, &config, &parts, &q).expect("row run succeeds");
                row_runs.push((nodes, kind, out));
            }
        }
        // Pass 2: the columnar batch path (the default).
        std::env::remove_var("ADAPTAGG_COLUMNAR");
        for (nodes, kind, row_out) in row_runs {
            let parts = build_partitions(&rows, nodes);
            let config = ClusterConfig::new(nodes, CostParams {
                max_hash_entries: m,
                ..CostParams::paper_default()
            })
            .with_threads(threads);
            let batch = run_algorithm(kind, &config, &parts, &q).expect("batch run succeeds");
            prop_assert_eq!(
                &batch.rows, &row_out.rows,
                "{}: batch rows diverged from row path at {} nodes, {} threads (card {}, m {})",
                kind, nodes, threads, card, m
            );
            if nodes == 1 {
                prop_assert_eq!(
                    batch.elapsed_ms().to_bits(),
                    row_out.elapsed_ms().to_bits(),
                    "{}: batch clock diverged from row path at {} threads ({} vs {})",
                    kind, threads, batch.elapsed_ms(), row_out.elapsed_ms()
                );
            }
        }
    }

    /// DISTINCT (empty aggregate list) is exact under every strategy and
    /// cluster size: the result is precisely the distinct key set.
    #[test]
    fn prop_oracle_distinct(
        raws in proptest::collection::vec((0u32..u32::MAX, 0i64..1), 0..300),
        card in 1usize..80,
        skew_bit in 0u8..2,
    ) {
        let skewed = skew_bit == 1;
        let rows = build_rows(&raws, card, skewed, false);
        let q = AggQuery::distinct(vec![0]);
        let mut expect: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        expect.sort_unstable();
        expect.dedup();
        for nodes in NODE_COUNTS {
            let parts = build_partitions(&rows, nodes);
            let config = ClusterConfig::new(nodes, CostParams {
                max_hash_entries: 8,
                ..CostParams::paper_default()
            });
            for kind in AlgorithmKind::ALL {
                let out = run_algorithm(kind, &config, &parts, &q).expect("run succeeds");
                let got: Vec<i64> = out
                    .rows
                    .iter()
                    .map(|r| r.key.values()[0].as_i64().unwrap())
                    .collect();
                prop_assert_eq!(&got, &expect, "{} at {} nodes", kind, nodes);
            }
        }
    }

    /// The AVG merge is checked against an independent hand oracle, not
    /// just the reference implementation: integer partial sums are exact,
    /// so the merged average must equal sum/count computed directly from
    /// the raw rows.
    #[test]
    fn prop_oracle_avg_merge_hand_computed(
        raws in proptest::collection::vec((0u32..u32::MAX, -500i64..500), 1..250),
        card in 1usize..40,
        nodes_ix in 0usize..3,
    ) {
        let nodes = NODE_COUNTS[nodes_ix];
        let rows = build_rows(&raws, card, false, false);
        let q = AggQuery::new(vec![0], vec![AggSpec::over(AggFunc::Avg, 1)]);
        let parts = build_partitions(&rows, nodes);
        let config = ClusterConfig::new(nodes, CostParams {
            max_hash_entries: 16,
            ..CostParams::paper_default()
        });
        // Hand oracle: per-group (sum, count) from the raw rows.
        let mut expect: std::collections::BTreeMap<i64, (i64, i64)> = Default::default();
        for r in &rows {
            let e = expect.entry(r[0].as_i64().unwrap()).or_insert((0, 0));
            e.0 += r[1].as_i64().unwrap();
            e.1 += 1;
        }
        for kind in AlgorithmKind::ALL {
            let out = run_algorithm(kind, &config, &parts, &q).expect("run succeeds");
            prop_assert_eq!(out.rows.len(), expect.len(), "{}", kind);
            for row in &out.rows {
                let g = row.key.values()[0].as_i64().unwrap();
                let (sum, count) = expect[&g];
                let want = sum as f64 / count as f64;
                let got = match row.aggs[0] {
                    Value::Float(f) => f,
                    Value::Int(i) => i as f64,
                    ref other => panic!("AVG produced {other:?}"),
                };
                prop_assert!(
                    (got - want).abs() < 1e-9,
                    "{}: AVG(g={}) = {}, want {}", kind, g, got, want
                );
            }
        }
    }
}
