//! Cross-validation: the analytical cost model (Figures 1–7) and the
//! measured execution engine (Figures 8–9) must agree on the *orderings*
//! the paper draws conclusions from — who wins at each end of the
//! selectivity range, on each network.

use adaptagg::prelude::*;

/// Run one algorithm on the engine and return elapsed virtual ms.
fn measured(kind: AlgorithmKind, groups: usize, params: &CostParams) -> f64 {
    const TUPLES: usize = 40_000;
    const NODES: usize = 8;
    let spec = RelationSpec::uniform(TUPLES, groups);
    let parts = generate_partitions(&spec, NODES);
    let config = ClusterConfig::new(NODES, params.clone());
    run_algorithm(kind, &config, &parts, &default_query())
        .expect("run succeeds")
        .elapsed_ms()
}

/// Evaluate the model at the same geometry.
fn modeled(alg: CostAlgorithm, groups: usize, params: &CostParams) -> f64 {
    let cfg = ModelConfig {
        params: params.clone(),
        nodes: 8,
        tuples: 40_000.0,
        io_enabled: true,
    };
    alg.cost(&cfg, groups as f64 / 40_000.0).total_ms()
}

/// Scale memory so the knee sits inside the sweep, like the paper's
/// 10 K entries against 250 K tuples/node.
fn params() -> CostParams {
    CostParams {
        max_hash_entries: 250,
        ..CostParams::paper_default()
    }
}

#[test]
fn low_selectivity_ordering_agrees() {
    let p = params();
    let groups = 8;
    // Model: 2P < Rep.
    assert!(
        modeled(CostAlgorithm::TwoPhase, groups, &p)
            < modeled(CostAlgorithm::Repartitioning, groups, &p)
    );
    // Engine: same.
    assert!(
        measured(AlgorithmKind::TwoPhase, groups, &p)
            < measured(AlgorithmKind::Repartitioning, groups, &p)
    );
}

#[test]
fn high_selectivity_ordering_agrees() {
    let p = params();
    let groups = 20_000; // duplicate-elimination end
    assert!(
        modeled(CostAlgorithm::Repartitioning, groups, &p)
            < modeled(CostAlgorithm::TwoPhase, groups, &p)
    );
    assert!(
        measured(AlgorithmKind::Repartitioning, groups, &p)
            < measured(AlgorithmKind::TwoPhase, groups, &p)
    );
}

#[test]
fn adaptive_two_phase_tracks_the_winner_at_both_ends() {
    let p = params();
    for groups in [8usize, 20_000] {
        let a2p = measured(AlgorithmKind::AdaptiveTwoPhase, groups, &p);
        let best = measured(AlgorithmKind::TwoPhase, groups, &p)
            .min(measured(AlgorithmKind::Repartitioning, groups, &p));
        assert!(
            a2p <= best * 1.2,
            "groups={groups}: A-2P {a2p} vs best static {best}"
        );
    }
}

#[test]
fn shared_bus_flips_the_middle_regime_in_both() {
    // Just past the memory knee: on a fast network switching (A2P) is
    // harmless; on the shared bus plain 2P wins because spilling is
    // cheaper than shipping.
    let groups = 4_000;
    let fast = params();
    let slow = CostParams {
        network: NetworkKind::ethernet_default(),
        ..params()
    };
    // Model: Rep's penalty for the bus is much larger than 2P's.
    let rep_penalty = modeled(CostAlgorithm::Repartitioning, groups, &slow)
        / modeled(CostAlgorithm::Repartitioning, groups, &fast);
    let tp_penalty =
        modeled(CostAlgorithm::TwoPhase, groups, &slow) / modeled(CostAlgorithm::TwoPhase, groups, &fast);
    assert!(rep_penalty > tp_penalty);
    // Engine: same.
    let rep_penalty_m = measured(AlgorithmKind::Repartitioning, groups, &slow)
        / measured(AlgorithmKind::Repartitioning, groups, &fast);
    let tp_penalty_m = measured(AlgorithmKind::TwoPhase, groups, &slow)
        / measured(AlgorithmKind::TwoPhase, groups, &fast);
    assert!(rep_penalty_m > tp_penalty_m);
}

#[test]
fn model_magnitudes_are_in_the_engines_ballpark() {
    // Not a calibration claim — just that the two costings of the same
    // geometry stay within a small factor, so the figures are mutually
    // interpretable.
    let p = params();
    for groups in [8usize, 2_000, 20_000] {
        for (alg_m, alg_e) in [
            (CostAlgorithm::TwoPhase, AlgorithmKind::TwoPhase),
            (CostAlgorithm::Repartitioning, AlgorithmKind::Repartitioning),
        ] {
            let m = modeled(alg_m, groups, &p);
            let e = measured(alg_e, groups, &p);
            let ratio = if m > e { m / e } else { e / m };
            assert!(
                ratio < 3.0,
                "{alg_e} at {groups} groups: model {m} vs engine {e}"
            );
        }
    }
}
