//! Allocation-count gate for the resident-group update hot path.
//!
//! The wall-clock optimization contract (ISSUE 3, DESIGN.md §10) says the
//! dominant aggregation step — updating an already-resident group via
//! `AggTable::insert_raw` — performs **zero heap allocations**. This test
//! enforces that with a counting global allocator: after warming the table
//! so every group is resident, a large batch of updates must not change
//! the allocation counter at all.
//!
//! This must stay the ONLY test in this file: `cargo test` runs tests in
//! one process on multiple threads, and a shared global counter would pick
//! up allocations from unrelated tests.

use adaptagg_hashagg::AggTable;
use adaptagg_model::{AggFunc, AggQuery, AggSpec, CountingTracker, RowKind, Value};
use adaptagg_storage::Page;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with a counter of alloc + realloc calls.
/// Deallocations are not counted: the claim is "no new heap memory", and
/// frees on the hot path would imply a matching earlier allocation anyway.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn resident_group_updates_do_not_allocate() {
    const GROUPS: i64 = 8;
    let query = AggQuery::new(vec![0], vec![AggSpec::over(AggFunc::Sum, 1)]);
    let mut table = AggTable::new(query, 10_000);
    let mut tracker = CountingTracker::new();

    // Warm-up: admit every group (this allocates — keys, agg states).
    for g in 0..GROUPS {
        table
            .insert_raw(&[Value::Int(g), Value::Int(1)], &mut tracker)
            .unwrap();
    }
    assert_eq!(table.len(), GROUPS as usize);

    // The libtest harness thread parks lazily after spawning this test:
    // its first park performs one-time channel/parker allocations at an
    // arbitrary moment, which the process-global counter would blame on
    // the measured window. Let it reach its steady park first, and retry
    // the window a few times — one-time lazy init drains after a single
    // attempt, whereas a genuinely allocating hot path allocates every
    // attempt and still fails.
    std::thread::sleep(std::time::Duration::from_millis(50));

    // Hot path: 1000 update rounds over the resident groups. The row
    // buffer lives on the stack; the probe hashes the key columns in
    // place and combines into the existing state — zero allocations.
    let mut counted = u64::MAX;
    for _attempt in 0..5 {
        let before = ALLOCS.load(Ordering::Relaxed);
        for round in 0..1000i64 {
            for g in 0..GROUPS {
                let row = [Value::Int(g), Value::Int(round)];
                table.insert_raw(&row, &mut tracker).unwrap();
            }
        }
        counted = ALLOCS.load(Ordering::Relaxed) - before;
        if counted == 0 {
            break;
        }
    }

    assert_eq!(
        counted,
        0,
        "resident-group insert_raw allocated {} times over {} updates",
        counted,
        1000 * GROUPS
    );
    assert_eq!(table.len(), GROUPS as usize, "no groups were added");

    // Batched hot path: the columnar fast lane (whole-page probe with the
    // vectorized hash kernel + deferred column-at-a-time updates) must be
    // allocation-free too once its pooled scratch vectors — the hash
    // column and the group-index column — are sized. The page is built
    // (and allocates) outside the window; one warm-up call sizes the
    // scratch pools.
    let mut page = Page::new(4096);
    for g in 0..GROUPS {
        assert!(page.try_push(&[Value::Int(g), Value::Int(2)]).unwrap());
    }
    let no_spill = |_: &mut CountingTracker, _: RowKind, _: &[Value]| -> Result<(), _> {
        panic!("resident groups never spill")
    };
    table
        .insert_page_batched(RowKind::Raw, &page, &mut tracker, no_spill)
        .unwrap();

    let mut counted = u64::MAX;
    for _attempt in 0..5 {
        let before = ALLOCS.load(Ordering::Relaxed);
        for _round in 0..1000 {
            table
                .insert_page_batched(RowKind::Raw, &page, &mut tracker, no_spill)
                .unwrap();
        }
        counted = ALLOCS.load(Ordering::Relaxed) - before;
        if counted == 0 {
            break;
        }
    }

    assert_eq!(
        counted,
        0,
        "batched resident-group updates allocated {} times over {} pages",
        counted,
        1000
    );
    assert_eq!(table.len(), GROUPS as usize, "no groups were added");
}
