//! Regression pins for the analytical cost model: exact values at
//! canonical points, hand-derived once from the §2 formulas with the
//! DESIGN.md corrections. If a cost formula changes, these fail loudly —
//! every figure depends on them.

use adaptagg::cost::{CostAlgorithm, ModelConfig};

fn near(actual: f64, expected: f64, what: &str) {
    assert!(
        (actual - expected).abs() < expected.abs() * 1e-9 + 1e-9,
        "{what}: {actual} != {expected}"
    );
}

/// Two Phase at scalar aggregation on the standard 32-node config.
///
/// Hand derivation (|R_i| = 250 000 tuples, R_i = 25 MB, P = 4 KB):
///   scan IO      = 25e6/4096 × 1.15 ms           = 7 019.0425… ms
///   select       = 250 000 × (t_r + t_w) = 250 000 × 0.01 ms = 2 500 ms
///   local agg    = 250 000 × (t_r+t_h+t_a) = 250 000 × 0.025 = 6 250 ms
///   result gen   = 1 group × t_w                              ≈ 0 ms
///   send         = 16 B / 4096 per page × (m_p + m_l)         ≈ 0.0005 ms
///   merge        = 32 partials × (t_r+t_a) + recv + store     ≈ 1.3 ms
#[test]
fn two_phase_scalar_aggregation_pinned() {
    let cfg = ModelConfig::paper_standard();
    let b = CostAlgorithm::TwoPhase.cost(&cfg, 1.0 / cfg.tuples);

    let p = &cfg.params;
    let tuples_i = 250_000.0;
    let scan_io = (25_000_000.0 / 4096.0) * 1.15;
    let select = tuples_i * (p.t_read() + p.t_write());
    let local = tuples_i * (p.t_read() + p.t_hash() + p.t_agg());

    near(b.phases[0].io_ms, scan_io, "phase1 io");
    // CPU = select + local agg + result gen (1 row) + msg protocol.
    let result_gen = 1.0 * p.t_write();
    let send_pages = (1.0 * cfg.projected_tuple_bytes()) / p.page_bytes as f64;
    let protocol = send_pages * p.t_msg_protocol();
    near(
        b.phases[0].cpu_ms,
        select + local + result_gen + protocol,
        "phase1 cpu",
    );
    near(
        b.phases[0].net_ms,
        send_pages * p.network.ms_per_page(),
        "phase1 net",
    );
    // Whole-query total is dominated by the above; pin it too.
    near(b.total_ms(), 15_769.068046875, "2P scalar total");
}

/// Repartitioning at S = 1e-3 (G = 8 000 ≥ N, no overflow anywhere).
#[test]
fn repartitioning_mid_selectivity_pinned() {
    let cfg = ModelConfig::paper_standard();
    let p = &cfg.params;
    let b = CostAlgorithm::Repartitioning.cost(&cfg, 1e-3);

    let tuples_i = 250_000.0;
    let scan_io = (25_000_000.0 / 4096.0) * 1.15;
    let select = tuples_i * (p.t_read() + p.t_write() + p.t_hash() + p.t_dest());
    let send_pages = tuples_i * cfg.projected_tuple_bytes() / p.page_bytes as f64;
    near(b.phases[0].io_ms, scan_io, "partition io");
    near(
        b.phases[0].cpu_ms,
        select + send_pages * p.t_msg_protocol(),
        "partition cpu",
    );
    near(
        b.phases[0].net_ms,
        send_pages * p.network.ms_per_page(),
        "partition net (latency-only)",
    );

    // Phase 2: every node receives |R|/N tuples and holds G/N groups.
    let recv_tuples = 250_000.0;
    let groups_here = 8_000.0 / 32.0;
    let recv_pages = recv_tuples * cfg.projected_tuple_bytes() / p.page_bytes as f64;
    let store_pages = groups_here * cfg.projected_tuple_bytes() / p.page_bytes as f64;
    near(
        b.phases[1].cpu_ms,
        recv_pages * p.t_msg_protocol()
            + recv_tuples * (p.t_read() + p.t_agg())
            + groups_here * p.t_write(),
        "aggregate cpu",
    );
    near(b.phases[1].io_ms, store_pages * p.io_seq_ms, "store io");
}

/// The 2P overflow term at S = 0.01 (G_local = 80 000 > M = 10 000).
#[test]
fn two_phase_overflow_term_pinned() {
    let cfg = ModelConfig::paper_standard();
    let p = &cfg.params;
    let b = CostAlgorithm::TwoPhase.cost(&cfg, 0.01);

    let scan_io = (25_000_000.0 / 4096.0) * 1.15;
    let projected_bytes = 25_000_000.0 * p.projectivity;
    let overflow_frac = 1.0 - 10_000.0 / 80_000.0; // 0.875
    let overflow_io = overflow_frac * (projected_bytes / p.page_bytes as f64) * 2.0 * p.io_seq_ms;
    near(b.phases[0].io_ms, scan_io + overflow_io, "phase1 io with overflow");
}

/// The shared-bus network multiplies per-node volume by N.
#[test]
fn shared_bus_serialization_pinned() {
    let mut cfg = ModelConfig::paper_cluster(); // 8 nodes, 2M tuples
    cfg.params.network = adaptagg::model::NetworkKind::SharedBus { ms_per_page: 2.0 };
    let p = &cfg.params;
    let b = CostAlgorithm::Repartitioning.cost(&cfg, 1e-2);

    let tuples_i = 250_000.0;
    let send_pages = tuples_i * cfg.projected_tuple_bytes() / p.page_bytes as f64;
    near(
        b.phases[0].net_ms,
        send_pages * 8.0 * 2.0,
        "bus: cluster volume serializes",
    );
}
