//! Allocation-count gate for the *parallel* hot path.
//!
//! The morsel engine's wall-clock contract extends DESIGN.md §10 to
//! worker threads: once the page pool and the per-worker tables are
//! warm, steady-state morsel processing — recycling pages through the
//! now thread-safe [`PagePool`] and updating resident groups through
//! [`ParTables`] — performs **zero heap allocations on any thread**.
//!
//! This must stay the ONLY test in this file: `cargo test` runs tests
//! in one process on multiple threads, and the global counter would
//! pick up allocations from unrelated tests. (The serial gate lives in
//! `alloc_hot_path.rs`, its own binary, for the same reason.)

use adaptagg::hashagg::{IntraMode, IntraStrategy, ParTables};
use adaptagg::model::hash::{hash_batch_finish, hash_batch_init, hash_batch_ints, hash_batch_values};
use adaptagg::model::{AggFunc, AggQuery, AggSpec, MemoryGrant, RowKind, Seed, Value};
use adaptagg::storage::{Page, PagePool, StripView};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

/// System allocator wrapped with a counter of alloc + realloc calls.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const THREADS: usize = 4;
const GROUPS: i64 = 8;
const PAGE_BYTES: usize = 4096;

#[test]
fn parallel_steady_state_does_not_allocate() {
    let query = AggQuery::new(vec![0], vec![AggSpec::over(AggFunc::Sum, 1)]);
    let tables = ParTables::new(
        query,
        10_000,
        MemoryGrant::unlimited(),
        THREADS,
        IntraMode::Fixed(IntraStrategy::ThreadLocal),
    )
    .expect("2+ threads and a prefix key");
    let pool = PagePool::new();

    // Phase fences: [warm-up] → snapshot → [steady state] → snapshot.
    // The spawns, the warm-up inserts and the pool priming all allocate;
    // none of that is between the two counter reads. The measured window
    // retries up to ATTEMPTS times (std barriers are cyclic): the libtest
    // harness thread parks lazily at an arbitrary moment after spawning
    // this test, and its one-time parker/channel allocations would be
    // blamed on whichever window they land in. Lazy init drains after one
    // attempt; a genuinely allocating steady state allocates every
    // attempt and still fails.
    const ATTEMPTS: usize = 5;
    let warm = Barrier::new(THREADS + 1);
    let go = Barrier::new(THREADS + 1);
    let done = Barrier::new(THREADS + 1);
    let decide = Barrier::new(THREADS + 1);
    let stop = AtomicBool::new(false);

    let counted = std::thread::scope(|s| {
        for w in 0..THREADS {
            let (tables, pool) = (&tables, &pool);
            let (warm, go, done, decide) = (&warm, &go, &done, &decide);
            let stop = &stop;
            s.spawn(move || {
                // Warm-up: every group resident in this worker's local
                // table, one pooled page per worker in flight, a stash
                // page of the resident keys for the batched lane, and a
                // hash-scratch column sized by one batch-kernel round.
                for g in 0..GROUPS {
                    let row = [Value::Int(g), Value::Int(1)];
                    tables.insert(w, RowKind::Raw, &row, g as u64).expect("no abort");
                }
                pool.put(pool.get(PAGE_BYTES));
                let mut stash = Page::new(PAGE_BYTES);
                for g in 0..GROUPS {
                    assert!(stash.try_push(&[Value::Int(g), Value::Int(1)]).unwrap());
                }
                let mut hashes: Vec<u64> = Vec::new();
                hash_batch_init(Seed::Table, stash.tuple_count(), &mut hashes);
                warm.wait();
                for _attempt in 0..ATTEMPTS {
                    go.wait();
                    // Steady state: morsel-shaped work — check a page out
                    // of the shared pool, fold a batch of rows into
                    // resident groups, recycle the page. Stack row
                    // buffers, in-place probes, lock-and-pop recycling:
                    // zero allocations. Half the rounds take the row
                    // lane, half the batched lane (vectorized key hash
                    // over the stash page's strips, prehashed inserts):
                    // both must be allocation-free.
                    for round in 0..1_000i64 {
                        let page = pool.get(PAGE_BYTES);
                        if round % 2 == 0 {
                            for g in 0..GROUPS {
                                let row = [Value::Int(g), Value::Int(round)];
                                tables
                                    .insert(w, RowKind::Raw, &row, (round * GROUPS + g) as u64)
                                    .expect("no abort");
                            }
                        } else {
                            hash_batch_init(Seed::Table, stash.tuple_count(), &mut hashes);
                            match stash.column(0).expect("dense key strip") {
                                StripView::Ints(xs) => hash_batch_ints(&mut hashes, xs),
                                StripView::Values(vs) => hash_batch_values(&mut hashes, vs),
                            }
                            hash_batch_finish(&mut hashes);
                            for g in 0..GROUPS {
                                let row = [Value::Int(g), Value::Int(round)];
                                tables
                                    .insert_prehashed(
                                        w,
                                        RowKind::Raw,
                                        &row,
                                        (round * GROUPS + g) as u64,
                                        hashes[g as usize],
                                    )
                                    .expect("no abort");
                            }
                        }
                        pool.put(page);
                    }
                    done.wait();
                    decide.wait();
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
            });
        }
        warm.wait();
        // Prime the pool beyond worst-case concurrent checkout, so no
        // steady-state `get` ever has to construct a fresh page.
        while pool.len() < 2 * THREADS {
            let extra: Vec<_> = (0..2 * THREADS).map(|_| pool.get(PAGE_BYTES)).collect();
            for p in extra {
                pool.put(p);
            }
        }
        let mut counted = u64::MAX;
        for _attempt in 0..ATTEMPTS {
            let before = ALLOCS.load(Ordering::Relaxed);
            go.wait();
            done.wait();
            counted = ALLOCS.load(Ordering::Relaxed) - before;
            if counted == 0 {
                stop.store(true, Ordering::Relaxed);
            }
            decide.wait();
            if counted == 0 {
                break;
            }
        }
        counted
    });

    assert_eq!(
        counted, 0,
        "parallel steady state allocated {counted} times across {THREADS} threads \
         × 1000 morsel rounds"
    );
}
