//! Acceptance suite for the observability layer.
//!
//! Three contracts:
//!
//! 1. **Completeness** — across the 150-run chaos matrix (25 seeds × the
//!    paper's six strategies, with a table budget small enough that A2P
//!    always overflows), every adaptive event a node reports has a
//!    matching first-class trace event carrying the trigger cause and the
//!    tuple offset.
//! 2. **Observer invariance** — enabling tracing changes no result row
//!    and no virtual-time figure (tracing never records a `CostEvent`).
//! 3. **Recovery visibility** — failed attempts appear in the run trace
//!    with victim, lost virtual time, and backoff.

use adaptagg::exec::{ExecError, FaultPlan};
use adaptagg::prelude::*;
use std::time::Duration;

const NODES: usize = 4;
const TUPLES: usize = 4_000;
const GROUPS: usize = 120;

/// The paper's six strategies (§2–§3).
const SIX: [AlgorithmKind; 6] = [
    AlgorithmKind::CentralizedTwoPhase,
    AlgorithmKind::TwoPhase,
    AlgorithmKind::Repartitioning,
    AlgorithmKind::Sampling,
    AlgorithmKind::AdaptiveTwoPhase,
    AlgorithmKind::AdaptiveRepartitioning,
];

/// A small table budget (≪ the 120-group workload) so every A2P scan
/// genuinely overflows — the paper default `M = 10 K` would never switch
/// here and the completeness check would be vacuous.
fn traced_chaos_config(plan: FaultPlan) -> ClusterConfig {
    ClusterConfig::new(
        NODES,
        CostParams {
            max_hash_entries: 64,
            ..CostParams::paper_default()
        },
    )
    .with_fault_plan(plan)
    .with_watchdog(Duration::from_secs(10))
    .with_tracing()
}

/// Assert every [`AdaptEvent`] on every node has its matching
/// [`TraceEvent`]; returns how many strategy switches were matched.
fn assert_events_traced(kind: AlgorithmKind, label: &str, out: &RunOutcome) -> usize {
    let trace = out.trace.as_ref().expect("traced run must carry a trace");
    let mut switches = 0;
    for (node_id, summary) in out.nodes.iter().enumerate() {
        let report = trace.node(node_id).unwrap_or_else(|| {
            panic!("{kind} {label}: node {node_id} missing from the trace")
        });
        for event in &summary.events {
            match *event {
                AdaptEvent::SwitchedToRepartitioning { at_tuple } => {
                    assert!(
                        report
                            .switches()
                            .any(|(c, t)| c == SwitchCause::TableFull && t == at_tuple),
                        "{kind} {label}: node {node_id} switched at tuple {at_tuple} \
                         but no table-full trace event matches: {:?}",
                        report.events
                    );
                    switches += 1;
                }
                AdaptEvent::FellBackToTwoPhase { at_tuple, local_decision } => {
                    let want = if local_decision {
                        SwitchCause::LowCardinalityLocal
                    } else {
                        SwitchCause::LowCardinalityPeer
                    };
                    assert!(
                        report.switches().any(|(c, t)| c == want && t == at_tuple),
                        "{kind} {label}: node {node_id} fell back at tuple {at_tuple} \
                         (local {local_decision}) but no matching trace event: {:?}",
                        report.events
                    );
                    switches += 1;
                }
                AdaptEvent::SamplingChose(choice) => {
                    let want = choice == AlgorithmChoice::Repartitioning;
                    assert!(
                        report.events.iter().any(|t| matches!(
                            t,
                            TraceEvent::SamplingDecision { use_repartitioning, .. }
                                if *use_repartitioning == want
                        )),
                        "{kind} {label}: node {node_id} chose {choice:?} but no \
                         matching sampling-decision trace event: {:?}",
                        report.events
                    );
                }
            }
        }
    }
    switches
}

/// The acceptance matrix: 25 seeds × six strategies = 150 traced chaos
/// runs. Every completed run's adaptive events must all appear as trace
/// events with cause + tuple offset, and the matrix as a whole must
/// actually contain switches (the small budget guarantees A2P overflows).
#[test]
fn every_switch_in_the_chaos_matrix_is_traced() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();

    let mut runs = 0;
    let mut completed = 0;
    let mut completed_a2p = 0;
    let mut switches = 0;
    for seed in 0..25u64 {
        let plan = FaultPlan::random(seed, NODES);
        for kind in SIX {
            runs += 1;
            match run_algorithm(kind, &traced_chaos_config(plan.clone()), &parts, &query) {
                Ok(out) => {
                    completed += 1;
                    if kind == AlgorithmKind::AdaptiveTwoPhase {
                        completed_a2p += 1;
                    }
                    switches += assert_events_traced(kind, &format!("seed {seed}"), &out);
                }
                Err(ExecError::InjectedCrash { .. }) => {
                    assert!(plan.has_crash(), "crash error without a scheduled crash");
                }
                Err(other) => panic!("{kind} seed {seed}: unexpected failure {other:?}"),
            }
        }
    }
    assert_eq!(runs, 150, "the acceptance matrix is 25 seeds × 6 strategies");
    assert!(completed > 0, "every schedule crashed — no trace coverage");
    // At M = 64 ≪ 120 groups, every node in every completed A2P run must
    // overflow and switch — each one verified above to carry a matching
    // trace event. (Sampling/ARep legitimately never switch here: the
    // 120-group workload sits above their low-cardinality thresholds.)
    assert!(completed_a2p > 0, "no A2P run ever completed");
    assert!(
        switches >= completed_a2p * NODES,
        "only {switches} traced switches across {completed_a2p} completed A2P runs \
         — the budget is not forcing overflows on every node"
    );
}

/// ARep's peer-contagion path: few groups on a multi-node cluster makes
/// one node decide locally and the rest follow a peer's end-of-phase
/// broadcast — both causes must appear in the trace with their offsets.
#[test]
fn arep_contagion_is_traced_with_both_causes() {
    let spec = RelationSpec::uniform(TUPLES, 10);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();
    let config = ClusterConfig::new(NODES, CostParams::paper_default()).with_tracing();
    let out = run_algorithm(AlgorithmKind::AdaptiveRepartitioning, &config, &parts, &query)
        .unwrap();
    assert_eq!(out.adapted_nodes().len(), NODES, "all nodes must fall back");
    assert_events_traced(AlgorithmKind::AdaptiveRepartitioning, "contagion", &out);
    let trace = out.trace.as_ref().unwrap();
    let causes: Vec<SwitchCause> = trace
        .nodes
        .iter()
        .flat_map(|n| n.switches().map(|(c, _)| c))
        .collect();
    assert!(causes.contains(&SwitchCause::LowCardinalityLocal));
    assert!(causes.contains(&SwitchCause::LowCardinalityPeer));
}

/// Observer invariance, exact: on a single node there is no cross-thread
/// arrival jitter, so a traced run must reproduce the untraced virtual
/// clock **bit for bit** for every strategy — tracing records no
/// `CostEvent` and never touches the clock.
#[test]
fn tracing_is_bit_invariant_on_one_node() {
    let spec = RelationSpec::uniform(1_000, 50);
    let parts = generate_partitions(&spec, 1);
    let query = default_query();
    for kind in AlgorithmKind::ALL {
        // Pin tracing *off* explicitly: the constructor honours
        // ADAPTAGG_TRACE, and this comparison must stay off-vs-on even
        // when CI exports it.
        let mut plain = ClusterConfig::new(1, CostParams::paper_default());
        plain.trace = false;
        let traced = plain.clone().with_tracing();
        let a = run_algorithm(kind, &plain, &parts, &query).unwrap();
        let b = run_algorithm(kind, &traced, &parts, &query).unwrap();
        assert_eq!(a.rows, b.rows, "{kind}: rows changed under tracing");
        assert_eq!(
            a.elapsed_ms().to_bits(),
            b.elapsed_ms().to_bits(),
            "{kind}: virtual time moved under tracing ({} vs {})",
            a.elapsed_ms(),
            b.elapsed_ms()
        );
        assert!(a.trace.is_none(), "untraced run carried a trace");
        assert!(b.trace.is_some(), "traced run lost its trace");
    }
}

/// Observer invariance at cluster scale: rows exact for all six; virtual
/// time within float-summation jitter for the algorithms whose timing is
/// arrival-order-stable (the same set `chaos.rs` pins — Sampling and
/// ARep legitimately jitter between *any* two runs).
#[test]
fn tracing_does_not_move_cluster_timings() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();
    let timing_stable = [
        AlgorithmKind::CentralizedTwoPhase,
        AlgorithmKind::TwoPhase,
        AlgorithmKind::Repartitioning,
        AlgorithmKind::AdaptiveTwoPhase,
    ];
    for kind in SIX {
        let mut plain = ClusterConfig::new(NODES, CostParams::paper_default());
        plain.trace = false; // off-vs-on even under ADAPTAGG_TRACE=1
        let traced = plain.clone().with_tracing();
        let a = run_algorithm(kind, &plain, &parts, &query).unwrap();
        let b = run_algorithm(kind, &traced, &parts, &query).unwrap();
        assert_eq!(a.rows, b.rows, "{kind}: rows changed under tracing");
        for (na, nb) in a.run.per_node.iter().zip(&b.run.per_node) {
            assert_eq!(na.net, nb.net, "{kind}: traffic counters changed under tracing");
        }
        if timing_stable.contains(&kind) {
            assert!(
                (a.elapsed_ms() - b.elapsed_ms()).abs() < 1e-6,
                "{kind}: timing moved under tracing ({} vs {})",
                a.elapsed_ms(),
                b.elapsed_ms()
            );
        }
    }
}

/// The traced phase profile is structurally sound: a switching A2P run
/// shows scan/partition/merge spans on every node, per-phase totals and
/// histograms line up, and the hash-aggregation metrics are present.
#[test]
fn phase_profile_covers_the_run() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();
    let out = run_algorithm(
        AlgorithmKind::AdaptiveTwoPhase,
        &traced_chaos_config(FaultPlan::none()),
        &parts,
        &query,
    )
    .unwrap();
    let trace = out.trace.as_ref().unwrap();
    assert_eq!(trace.nodes.len(), NODES);
    for node in &trace.nodes {
        for phase in [PhaseKind::Scan, PhaseKind::Partition, PhaseKind::Merge] {
            assert!(
                node.phase_ms(phase) > 0.0,
                "node {}: no virtual time in {phase:?}",
                node.node
            );
        }
        assert!(
            node.metrics.counter("hashagg.rows_in") > 0,
            "node {}: hash-aggregation metrics missing",
            node.node
        );
        assert!(
            node.links.iter().any(|l| l.msgs > 0 && l.bytes > 0),
            "node {}: no per-link traffic recorded",
            node.node
        );
    }
    let totals = trace.phase_totals();
    let scan = totals
        .iter()
        .find(|(p, _)| *p == PhaseKind::Scan)
        .expect("scan phase present in totals");
    assert_eq!(scan.1.spans, NODES as u64, "one scan span per node");
    let hist = trace.phase_histogram(PhaseKind::Scan).expect("scan histogram");
    assert_eq!(hist.count(), NODES as u64);
    // The rendered artifacts carry the same structure.
    let json = trace.to_json();
    assert!(json.contains("\"schema\": \"adaptagg-trace/v1\""));
    assert!(json.contains("\"cause\": \"table-full\""));
    let text = trace.to_text();
    assert!(text.contains("switched to repartitioning at tuple"));
}

/// Recovery attempts are first-class trace records: a single-node crash
/// under recovery yields one failed-attempt entry naming the victim, and
/// the surviving nodes' reports keep their original ids.
#[test]
fn recovery_attempts_appear_in_the_trace() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();
    let reference = reference_aggregate(&parts, &query).unwrap();
    let victim = 2;
    let config = ClusterConfig::new(NODES, CostParams::paper_default())
        .with_fault_plan(FaultPlan::new(victim as u64).with_crash(victim, 50))
        .with_watchdog(Duration::from_secs(10))
        .with_recovery(RecoveryPolicy::default())
        .with_tracing();
    let out = run_algorithm(AlgorithmKind::TwoPhase, &config, &parts, &query).unwrap();
    assert_eq!(out.rows, reference);
    let trace = out.trace.as_ref().expect("recovered run carries a trace");
    assert_eq!(trace.recovery.len(), 1, "one failed attempt before success");
    let attempt = &trace.recovery[0];
    assert_eq!(attempt.attempt, 1);
    assert_eq!(attempt.victim, Some(victim));
    assert!(attempt.lost_ms >= 0.0);
    // Survivor reports keep original node ids; the victim has none.
    for node in &trace.nodes {
        assert_ne!(node.node, victim, "the dead node cannot have a final report");
        assert!(node.node < NODES);
    }
    assert_eq!(trace.nodes.len(), NODES - 1);

    // The whole-run recovery totals ride the trace document too, so
    // `--trace json` is self-contained: no cross-referencing the run
    // report to learn what recovery cost.
    let summary = trace
        .recovery_summary
        .as_ref()
        .expect("recovered runs carry a recovery summary");
    assert_eq!(summary.attempts, 2, "one failed + one successful attempt");
    assert_eq!(summary.dead_nodes, vec![victim]);
    assert!(summary.reassigned_partitions > 0, "the victim's data moved");
    assert!(summary.lost_ms >= 0.0 && summary.backoff_ms >= 0.0);
    let json = trace.to_json();
    assert!(json.contains("\"recovery\": {\"attempts\": 2"));
    assert!(json.contains(&format!("\"dead_nodes\": [{victim}]")));
    assert!(json.contains("\"transport\": \"in-process\""));
}

/// A query served under broker pressure carries its queue/broker
/// numbers as trace annotations: grant, budget, queue wait, and
/// co-residency — enough to attribute a degraded run from the trace
/// JSON alone.
#[test]
fn serving_annotations_ride_the_trace() {
    use adaptagg::serve::scheduler::{Dataset, QueryRequest, Scheduler, ServeConfig};
    use std::sync::Arc;

    let budget = 800;
    let data = Arc::new(Dataset::uniform(4, 12_000, 600, 7));
    let mut cfg = ServeConfig::new(budget);
    cfg.concurrency = 2;
    cfg.min_grant = 100;
    let sched = Scheduler::new(cfg, data);

    // Two co-resident queries: each gets budget/2 = 400 entries, below
    // the ~600 per-node groups, so both degrade and switch.
    let slow = QueryRequest {
        stall: Some(Duration::from_millis(120)),
        ..QueryRequest::new("SELECT g, SUM(v) FROM r GROUP BY g")
    };
    let t1 = sched.submit(slow).expect("first query admitted");
    std::thread::sleep(Duration::from_millis(40));
    let t2 = sched
        .submit(QueryRequest::new("SELECT g, COUNT(*) FROM r GROUP BY g"))
        .expect("second query admitted");
    let r2 = t2.wait();
    let r1 = t1.wait();

    let s2 = r2.success().expect("concurrent query completes");
    assert!(s2.degraded, "half the budget is a degraded admission");
    let trace = s2.trace_json.as_ref().expect("tracing on by default");
    assert!(
        trace.contains(&format!("\"serve.grant_entries\": {}", budget / 2)),
        "the shrunken grant must be in the trace"
    );
    assert!(trace.contains(&format!("\"serve.memory_budget\": {budget}")));
    assert!(trace.contains("\"serve.queue_wait_ms\":"));
    assert!(trace.contains("\"serve.active_at_admit\": 1"));

    // The degradation ladder end to end: the 400-entry grant cannot
    // hold ~600 groups, so the adaptive runtime visibly switches
    // strategy — with its cause on record — rather than failing…
    assert!(
        trace.contains("\"kind\": \"strategy-switch\""),
        "a reduced grant must surface as a traced strategy switch"
    );
    assert!(trace.contains("\"cause\": \"table-full\""));

    // …and the squeezed answer stays bit-identical to the serial
    // reference oracle.
    let data = sched.dataset();
    let bound = adaptagg::sql::compile("SELECT g, COUNT(*) FROM r GROUP BY g", &data.schema)
        .expect("test query compiles");
    let oracle = adaptagg::algos::reference_aggregate(&data.partitions, &bound.query)
        .expect("reference oracle");
    assert_eq!(s2.rows, oracle, "degraded must never mean wrong");

    assert!(r1.success().is_some(), "the stalled query also completes");
}

/// Intra-node parallelism is observable: a multi-threaded traced run
/// carries the picker's `intra.pick` decision with its strategy name and
/// morsel offset, in both the structured events and the rendered
/// artifacts.
#[test]
fn intra_node_pick_is_traced_with_morsel_offset() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, 2);
    let config = ClusterConfig::new(2, CostParams::paper_default())
        .with_threads(4)
        .with_tracing();
    let out = run_algorithm(AlgorithmKind::TwoPhase, &config, &parts, &default_query()).unwrap();
    let trace = out.trace.as_ref().unwrap();
    let picks: Vec<(&str, u64)> = trace
        .nodes
        .iter()
        .flat_map(|n| n.events.iter())
        .filter_map(|e| match e {
            TraceEvent::IntraPick { strategy, at_morsel, .. } => Some((*strategy, *at_morsel)),
            _ => None,
        })
        .collect();
    assert!(!picks.is_empty(), "4-thread run must trace its strategy pick");
    for (strategy, _) in &picks {
        assert!(
            ["thread-local", "shared", "partitioned"].contains(strategy),
            "unknown strategy spelling {strategy:?}"
        );
    }
    let json = trace.to_json();
    assert!(json.contains("\"kind\": \"intra.pick\""));
    assert!(json.contains("\"at_morsel\":"));
    assert!(trace.to_text().contains("intra-node picker chose"));
}

/// A mid-scan `intra.switch` with its cause and morsel offset: the first
/// half of the relation repeats 16 keys (the observation window rate sits
/// far below the partitioning threshold), the second half is all-distinct
/// (any window there is ~100% new groups), so the picker must escalate to
/// the partitioned layout mid-scan — and the switch must move neither the
/// result rows nor one bit of the virtual clock.
#[test]
fn intra_node_switch_fires_on_bimodal_distinct_rate() {
    let mut rows: Vec<Vec<Value>> = (0..6_000i64)
        .map(|i| vec![Value::Int(i % 16), Value::Int(i)])
        .collect();
    rows.extend((0..6_000i64).map(|i| vec![Value::Int(1_000 + i), Value::Int(i)]));
    let parts = adaptagg::workload::round_robin_partitions(&rows, 1, 4096);
    let query = default_query();

    let traced = ClusterConfig::new(1, CostParams::paper_default())
        .with_threads(4)
        .with_tracing();
    let par = run_algorithm(AlgorithmKind::TwoPhase, &traced, &parts, &query).unwrap();
    assert_eq!(par.rows.len(), 6_016, "16 repeated + 6000 distinct groups");

    let trace = par.trace.as_ref().unwrap();
    let switches: Vec<(&str, &str, &str, u64)> = trace
        .nodes
        .iter()
        .flat_map(|n| n.events.iter())
        .filter_map(|e| match e {
            TraceEvent::IntraSwitch { from, to, cause, at_morsel, .. } => {
                Some((*from, *to, *cause, *at_morsel))
            }
            _ => None,
        })
        .collect();
    assert!(
        switches
            .iter()
            .any(|&(_, to, cause, _)| to == "partitioned" && cause == "high-distinct-rate"),
        "the all-distinct tail must force a partitioned switch, got {switches:?}"
    );
    assert!(
        switches.iter().all(|&(_, _, _, m)| m > 0),
        "a mid-scan switch cannot land at morsel 0: {switches:?}"
    );
    let json = trace.to_json();
    assert!(json.contains("\"kind\": \"intra.switch\""));
    assert!(json.contains("\"cause\": \"high-distinct-rate\""));
    assert!(trace.to_text().contains("intra-node strategy switched"));

    // The escalation is physical only: serial execution of the same scan
    // produces identical rows and the identical virtual-time bits.
    let serial_cfg = ClusterConfig::new(1, CostParams::paper_default()).with_threads(1);
    let serial = run_algorithm(AlgorithmKind::TwoPhase, &serial_cfg, &parts, &query).unwrap();
    assert_eq!(serial.rows, par.rows);
    assert_eq!(
        serial.elapsed_ms().to_bits(),
        par.elapsed_ms().to_bits(),
        "the mid-scan switch moved the virtual clock ({} vs {})",
        serial.elapsed_ms(),
        par.elapsed_ms()
    );
}

/// The completeness contract holds unchanged over the TCP loopback
/// backend: tracing lives above the transport, so swapping the wire
/// must not lose an event or mislabel the run.
#[test]
fn chaos_switches_are_traced_over_tcp_loopback() {
    let spec = RelationSpec::uniform(TUPLES, GROUPS);
    let parts = generate_partitions(&spec, NODES);
    let query = default_query();

    let mut completed = 0;
    for seed in [0u64, 3, 11] {
        let plan = FaultPlan::random(seed, NODES);
        for kind in SIX {
            let cfg = traced_chaos_config(plan.clone())
                .with_transport(adaptagg::net::TransportKind::TcpLoopback);
            match run_algorithm(kind, &cfg, &parts, &query) {
                Ok(out) => {
                    completed += 1;
                    let label = format!("seed {seed} over tcp");
                    assert_events_traced(kind, &label, &out);
                    assert_eq!(
                        out.trace.as_ref().unwrap().transport,
                        "tcp-loopback",
                        "{kind} {label}: trace mislabels its transport"
                    );
                }
                Err(ExecError::InjectedCrash { .. }) => {
                    assert!(plan.has_crash(), "crash error without a scheduled crash");
                }
                Err(other) => panic!("{kind} seed {seed} tcp: unexpected failure {other:?}"),
            }
        }
    }
    assert!(completed > 0, "every TCP schedule crashed — no coverage");
}
