//! Intra-node parallelism determinism acceptance.
//!
//! The morsel engine's contract (PR: morsel-driven intra-node
//! parallelism): worker threads may only move wall-clock time. For every
//! thread count and every physical table strategy,
//!
//! * result rows are identical, and
//! * on clusters whose message-arrival order is deterministic (0 or 1
//!   peers per receiver), the virtual clock is **bit-identical** —
//!   charges replay in the logical serial order, so `--threads 8` lands
//!   on the same f64 as `--threads 1`.
//!
//! Multi-peer clusters already jitter between any two identical serial
//! runs (float summation in arrival order), so there the suite asserts
//! row equality, which is exact everywhere.

use adaptagg::hashagg::IntraStrategy;
use adaptagg::prelude::*;

/// Deterministic-arrival configs: 1 node (no peers) and 2 nodes (one
/// peer per receiver), as pinned by `cost_invariance.rs`.
const SHAPES: &[(usize, usize, usize)] = &[
    // (nodes, tuples, groups)
    (1, 3_000, 24),     // low cardinality: picker goes thread-local
    (1, 3_000, 1_200),  // high cardinality: picker partitions
    (2, 4_000, 300),    // two nodes, mid cardinality: shared table
];

const KINDS: [AlgorithmKind; 4] = [
    AlgorithmKind::CentralizedTwoPhase,
    AlgorithmKind::TwoPhase,
    AlgorithmKind::Repartitioning,
    AlgorithmKind::AdaptiveTwoPhase,
];

fn run(kind: AlgorithmKind, nodes: usize, tuples: usize, groups: usize, threads: usize) -> RunOutcome {
    let spec = RelationSpec::uniform(tuples, groups);
    let parts = generate_partitions(&spec, nodes);
    let config = ClusterConfig::new(nodes, CostParams::paper_default()).with_threads(threads);
    run_algorithm(kind, &config, &parts, &default_query()).unwrap()
}

#[test]
fn rows_and_virtual_time_are_identical_across_thread_counts() {
    for &(nodes, tuples, groups) in SHAPES {
        for kind in KINDS {
            let serial = run(kind, nodes, tuples, groups, 1);
            assert_eq!(serial.rows.len(), groups);
            for threads in [2usize, 4, 8] {
                let parallel = run(kind, nodes, tuples, groups, threads);
                assert_eq!(
                    serial.rows, parallel.rows,
                    "{kind} n={nodes} |G|={groups}: rows diverged at {threads} threads"
                );
                assert_eq!(
                    serial.elapsed_ms().to_bits(),
                    parallel.elapsed_ms().to_bits(),
                    "{kind} n={nodes} |G|={groups}: virtual time diverged at {threads} \
                     threads ({} vs {})",
                    serial.elapsed_ms(),
                    parallel.elapsed_ms()
                );
            }
        }
    }
}

/// Every *fixed* physical strategy reproduces the adaptive (and serial)
/// result exactly — rows and clock. The strategy only chooses where rows
/// physically land; the stamped drain unifies them in logical order.
///
/// `ADAPTAGG_INTRA` is process-global, but by the engine's contract the
/// strategy can never change results or virtual time, so flipping it
/// while sibling tests run is harmless by construction (that is what
/// this test proves).
#[test]
fn every_fixed_strategy_is_bit_identical_to_serial() {
    let serial = run(AlgorithmKind::TwoPhase, 1, 4_000, 300, 1);
    for strategy in [
        IntraStrategy::ThreadLocal,
        IntraStrategy::Shared,
        IntraStrategy::Partitioned,
    ] {
        std::env::set_var("ADAPTAGG_INTRA", strategy.name());
        let parallel = run(AlgorithmKind::TwoPhase, 1, 4_000, 300, 4);
        std::env::remove_var("ADAPTAGG_INTRA");
        assert_eq!(
            serial.rows,
            parallel.rows,
            "strategy {} diverged from serial rows",
            strategy.name()
        );
        assert_eq!(
            serial.elapsed_ms().to_bits(),
            parallel.elapsed_ms().to_bits(),
            "strategy {}: virtual time diverged ({} vs {})",
            strategy.name(),
            serial.elapsed_ms(),
            parallel.elapsed_ms()
        );
    }
}

/// The parallel fast path genuinely engages (it is not aborting to the
/// serial path everywhere): a traced multi-threaded run must carry
/// `intra.pick` events, and a spill-regime run must not (the engine
/// aborts rather than reproduce overflow I/O charges).
#[test]
fn parallel_runs_trace_their_strategy_pick() {
    let spec = RelationSpec::uniform(4_000, 120);
    let parts = generate_partitions(&spec, 2);
    let config = ClusterConfig::new(2, CostParams::paper_default())
        .with_threads(4)
        .with_tracing();
    let out = run_algorithm(AlgorithmKind::TwoPhase, &config, &parts, &default_query()).unwrap();
    let json = out.trace.as_ref().unwrap().to_json();
    assert!(
        json.contains("\"kind\": \"intra.pick\""),
        "no intra.pick event — the parallel path never committed"
    );

    // Spill regime: 1 500 groups against a 300-entry budget. The engine
    // must abort (serial fallback), so no pick is ever traced.
    let spec = RelationSpec::uniform(3_000, 1_500);
    let parts = generate_partitions(&spec, 1);
    let params = CostParams {
        max_hash_entries: 300,
        ..CostParams::paper_default()
    };
    let config = ClusterConfig::new(1, params).with_threads(4).with_tracing();
    let out = run_algorithm(AlgorithmKind::TwoPhase, &config, &parts, &default_query()).unwrap();
    let json = out.trace.as_ref().unwrap().to_json();
    assert!(
        !json.contains("\"kind\": \"intra.pick\""),
        "spill regime must fall back to the serial path"
    );
    assert_eq!(out.rows.len(), 1_500);
}
