//! Property-based codec suite for the columnar page layout.
//!
//! The `Page` re-layout (one contiguous strip per column) must be invisible
//! at every boundary: the row-major wire/file encoding (`encode_into` /
//! `from_raw`) is byte-for-byte the original format, the row cursor yields
//! exactly the pushed tuples, and the strip views expose the same cells the
//! cursor does. These tests drive all of that with random schemas, random
//! row counts, and the degenerate shapes (empty, single-row, page-full).

use adaptagg::model::{encoded_len, Value};
use adaptagg::storage::{Page, StripView};
use proptest::prelude::*;

/// A compact generator for one cell. Tag space deliberately covers the
/// Int fast path (dense), plus Null / Float / Str so strips promote.
fn cell_from(tag: u8, x: i64) -> Value {
    match tag % 4 {
        0 | 1 => Value::Int(x),
        2 => Value::Float(x as f64 / 3.0),
        3 => {
            if x % 5 == 0 {
                Value::Null
            } else {
                Value::Str(format!("s{x}").into())
            }
        }
        _ => unreachable!(),
    }
}

/// Build rows from a row-major list of (tag, payload) cells with the given
/// arity pattern; `ragged` widens every third row by one column.
fn rows_from(cells: &[(u8, i64)], arity: usize, ragged: bool) -> Vec<Vec<Value>> {
    let arity = arity.max(1);
    let mut rows = Vec::new();
    let mut it = cells.iter();
    'outer: loop {
        let a = if ragged && rows.len() % 3 == 2 {
            arity + 1
        } else {
            arity
        };
        let mut row = Vec::with_capacity(a);
        for _ in 0..a {
            match it.next() {
                Some(&(tag, x)) => row.push(cell_from(tag, x)),
                None => break 'outer,
            }
        }
        rows.push(row);
    }
    rows
}

/// Push rows until the page refuses; return the accepted prefix.
fn fill(page: &mut Page, rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut accepted = Vec::new();
    for row in rows {
        match page.try_push(row) {
            Ok(true) => accepted.push(row.clone()),
            Ok(false) => break,
            Err(e) => panic!("tuple should fit a fresh page: {e}"),
        }
    }
    accepted
}

/// Cursor must replay exactly the accepted rows, in order.
fn assert_cursor_matches(page: &Page, expect: &[Vec<Value>]) {
    let mut cur = page.cursor();
    let mut scratch = Vec::new();
    for (i, row) in expect.iter().enumerate() {
        assert_eq!(cur.remaining(), expect.len() - i);
        assert!(cur.next_into(&mut scratch).unwrap());
        assert_eq!(&scratch, row, "row {i} diverged");
    }
    assert!(!cur.next_into(&mut scratch).unwrap());
    assert_eq!(cur.remaining(), 0);
}

/// Strip views must expose the same cells the cursor yields, and the Int
/// fast-path view may only appear for all-Int columns.
fn assert_strips_match(page: &Page, expect: &[Vec<Value>]) {
    let Some(arity) = page.uniform_arity() else {
        // Ragged page: every column either reports None or is unused here.
        return;
    };
    for j in 0..arity {
        let view = page
            .column(j)
            .unwrap_or_else(|| panic!("uniform-arity page must expose column {j}"));
        match view {
            StripView::Ints(xs) => {
                assert_eq!(xs.len(), expect.len());
                for (r, row) in expect.iter().enumerate() {
                    assert_eq!(row[j], Value::Int(xs[r]), "int strip col {j} row {r}");
                }
            }
            StripView::Values(vs) => {
                assert_eq!(vs.len(), expect.len());
                let mut all_int = true;
                for (r, row) in expect.iter().enumerate() {
                    assert_eq!(row[j], vs[r], "value strip col {j} row {r}");
                    all_int &= matches!(row[j], Value::Int(_));
                }
                assert!(
                    expect.is_empty() || !all_int,
                    "all-Int column {j} should use the Ints fast path"
                );
            }
        }
    }
}

/// Encode → from_raw must be a lossless roundtrip, and the byte budget
/// accounting (`bytes_used`) must equal the real encoded size.
fn assert_roundtrip(page: &Page, expect: &[Vec<Value>]) {
    let mut bytes = Vec::new();
    page.encode_into(&mut bytes);
    assert_eq!(bytes.len(), page.bytes_used(), "bytes_used must be exact");
    let want: usize = expect.iter().map(|r| encoded_len(r)).sum();
    assert_eq!(bytes.len(), want, "encoding must match the row-major format");
    let back = Page::from_raw(page.capacity(), bytes, page.tuple_count() as u32).unwrap();
    assert_eq!(&back, page, "decode(encode(page)) != page");
    assert_cursor_matches(&back, expect);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random schema, random rows, random page capacity: push, then check
    /// cursor replay, strip views, and the encode/decode roundtrip.
    #[test]
    fn prop_columnar_roundtrip(
        cells in proptest::collection::vec((0u8..8, -500i64..500), 0..160),
        arity in 1usize..5,
        capacity in 64usize..1024,
        ragged in 0u8..2,
    ) {
        let rows = rows_from(&cells, arity, ragged == 1);
        let mut page = Page::new(capacity);
        let accepted = fill(&mut page, &rows);
        prop_assert_eq!(page.tuple_count(), accepted.len());
        assert_cursor_matches(&page, &accepted);
        assert_strips_match(&page, &accepted);
        assert_roundtrip(&page, &accepted);
    }

    /// A cleared page behaves exactly like a fresh one (the pool reuses
    /// pages, so stale strip state must never leak into the next fill).
    #[test]
    fn prop_cleared_page_equals_fresh(
        cells in proptest::collection::vec((0u8..8, -500i64..500), 0..120),
        arity in 1usize..4,
    ) {
        let rows = rows_from(&cells, arity, false);
        let mut reused = Page::new(512);
        // Dirty the page with promoted strips, then clear.
        reused.try_push(&[Value::Str("warm".into()), Value::Null]).unwrap();
        reused.try_push(&[Value::Int(7), Value::Float(1.5)]).unwrap();
        reused.clear();
        let mut fresh = Page::new(512);
        let a = fill(&mut reused, &rows);
        let b = fill(&mut fresh, &rows);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&reused, &fresh);
        let mut ra = Vec::new();
        let mut rb = Vec::new();
        reused.encode_into(&mut ra);
        fresh.encode_into(&mut rb);
        prop_assert_eq!(ra, rb, "reused page must encode identically");
    }
}

/// The empty page: zero tuples, zero bytes, a clean roundtrip, and no
/// column views (there is no schema yet).
#[test]
fn empty_page_roundtrips() {
    let page = Page::new(256);
    assert_eq!(page.tuple_count(), 0);
    assert_eq!(page.bytes_used(), 0);
    assert!(page.is_empty());
    assert_eq!(page.uniform_arity(), None);
    assert_eq!(page.column(0), None);
    assert_cursor_matches(&page, &[]);
    assert_roundtrip(&page, &[]);
}

/// Single-row pages across every tag shape.
#[test]
fn single_row_pages_roundtrip() {
    let rows: Vec<Vec<Value>> = vec![
        vec![Value::Int(-9)],
        vec![Value::Int(1), Value::Int(2), Value::Int(3)],
        vec![Value::Null],
        vec![Value::Float(0.25), Value::Str("".into())],
        vec![Value::Str("solo".into()), Value::Null, Value::Int(0)],
    ];
    for row in rows {
        let mut page = Page::new(256);
        assert!(page.try_push(&row).unwrap());
        let expect = vec![row];
        assert_eq!(page.uniform_arity(), Some(expect[0].len()));
        assert_cursor_matches(&page, &expect);
        assert_strips_match(&page, &expect);
        assert_roundtrip(&page, &expect);
    }
}

/// Fill a small page to the brim: admission must stop exactly at the byte
/// budget, and the full page must still roundtrip.
#[test]
fn max_capacity_page_roundtrips() {
    let row = vec![Value::Int(42), Value::Int(-42)];
    let per = encoded_len(&row);
    let capacity = per * 7 + per / 2; // room for exactly 7 rows
    let mut page = Page::new(capacity);
    let mut expect = Vec::new();
    loop {
        match page.try_push(&row).unwrap() {
            true => expect.push(row.clone()),
            false => break,
        }
    }
    assert_eq!(expect.len(), 7);
    assert!(!page.fits(per));
    assert!(page.bytes_used() + per > capacity);
    assert_cursor_matches(&page, &expect);
    assert_strips_match(&page, &expect);
    assert_roundtrip(&page, &expect);
}

/// Mixed-arity (ragged) pages keep full row fidelity through the cursor
/// and the codec even though no column views are available.
#[test]
fn ragged_pages_roundtrip_without_views() {
    let rows = vec![
        vec![Value::Int(1)],
        vec![Value::Int(2), Value::Str("b".into())],
        vec![Value::Int(3), Value::Null, Value::Float(9.0)],
    ];
    let mut page = Page::new(512);
    for r in &rows {
        assert!(page.try_push(r).unwrap());
    }
    assert_eq!(page.uniform_arity(), None);
    assert_eq!(page.column(1), None, "ragged column must not expose a view");
    assert_cursor_matches(&page, &rows);
    assert_roundtrip(&page, &rows);
}
