//! The foundational integration invariant: every parallel aggregation
//! algorithm produces exactly the single-node reference result, across
//! cluster sizes, memory budgets, networks, query shapes, and data
//! distributions.

use adaptagg::prelude::*;

fn check_all(
    parts: &[adaptagg::storage::HeapFile],
    query: &AggQuery,
    nodes: usize,
    params: CostParams,
) {
    let reference = reference_aggregate(parts, query).unwrap();
    let config = ClusterConfig::new(nodes, params);
    for kind in AlgorithmKind::ALL {
        let out = run_algorithm(kind, &config, parts, query).expect("run succeeds");
        assert_eq!(
            out.rows, reference,
            "{kind} diverged ({nodes} nodes, query {query})"
        );
    }
}

#[test]
fn uniform_across_selectivity_spectrum() {
    for groups in [1usize, 7, 100, 2_000, 10_000] {
        let spec = RelationSpec::uniform(20_000, groups).with_seed(groups as u64);
        let parts = generate_partitions(&spec, 8);
        check_all(&parts, &default_query(), 8, CostParams::paper_default());
    }
}

#[test]
fn tight_memory_budgets() {
    let spec = RelationSpec::uniform(10_000, 1_500);
    for m in [1usize, 16, 200, 5_000] {
        let parts = generate_partitions(&spec, 4);
        let params = CostParams {
            max_hash_entries: m,
            ..CostParams::paper_default()
        };
        check_all(&parts, &default_query(), 4, params);
    }
}

#[test]
fn cluster_sizes_including_single_node() {
    for nodes in [1usize, 2, 3, 8, 16] {
        let spec = RelationSpec::uniform(8_000, 300);
        let parts = generate_partitions(&spec, nodes);
        check_all(&parts, &default_query(), nodes, CostParams::paper_default());
    }
}

#[test]
fn shared_bus_network() {
    let spec = RelationSpec::uniform(12_000, 800);
    let parts = generate_partitions(&spec, 8);
    check_all(&parts, &default_query(), 8, CostParams::cluster_default());
}

#[test]
fn every_aggregate_function_mix() {
    let spec = RelationSpec::uniform(6_000, 250);
    let parts = generate_partitions(&spec, 4);
    let query = AggQuery::new(
        vec![0],
        vec![
            AggSpec::count_star(),
            AggSpec::over(AggFunc::Count, 1),
            AggSpec::over(AggFunc::Sum, 1),
            AggSpec::over(AggFunc::Avg, 1),
            AggSpec::over(AggFunc::Min, 1),
            AggSpec::over(AggFunc::Max, 1),
            AggSpec::over(AggFunc::VarPop, 1),
            AggSpec::over(AggFunc::StddevPop, 1),
        ],
    );
    // (Integer inputs keep the variance moments exactly representable in
    // f64, so cross-algorithm equality is bit-exact.)
    check_all(&parts, &query, 4, CostParams::paper_default());
}

#[test]
fn duplicate_elimination_query() {
    let spec = RelationSpec::uniform(10_000, 4_000);
    let parts = generate_partitions(&spec, 8);
    let params = CostParams {
        max_hash_entries: 300,
        ..CostParams::paper_default()
    };
    check_all(&parts, &AggQuery::distinct(vec![0]), 8, params);
}

#[test]
fn scalar_aggregation_query() {
    let spec = RelationSpec::uniform(5_000, 123);
    let parts = generate_partitions(&spec, 4);
    let query = AggQuery::new(
        vec![],
        vec![AggSpec::over(AggFunc::Sum, 1), AggSpec::count_star()],
    );
    check_all(&parts, &query, 4, CostParams::paper_default());
}

#[test]
fn output_skewed_data() {
    let spec = OutputSkewSpec::paper_figure9(2_500, 3_000);
    let parts = spec.generate_partitions();
    let params = CostParams {
        max_hash_entries: 200,
        ..CostParams::cluster_default()
    };
    check_all(&parts, &default_query(), 8, params);
}

#[test]
fn input_skewed_data() {
    let spec = InputSkewSpec::new(4, 2_000, 150);
    let parts = spec.generate_partitions();
    check_all(&parts, &default_query(), 4, CostParams::paper_default());
}

#[test]
fn tpcd_queries() {
    let w = TpcdWorkload::new(12_000);
    let parts = w.generate_partitions(8);
    for query in [
        TpcdWorkload::q1_query(),
        TpcdWorkload::per_order_query(),
        TpcdWorkload::distinct_orders_query(),
    ] {
        check_all(&parts, &query, 8, CostParams::cluster_default());
    }
}

#[test]
fn multi_column_group_by() {
    // Group on (g mod …, tag) pairs via the TPC-D layout's two columns.
    let w = TpcdWorkload::new(5_000);
    let parts = w.generate_partitions(4);
    let query = AggQuery::new(
        vec![0, 1],
        vec![AggSpec::over(AggFunc::Sum, 2)],
    );
    check_all(&parts, &query, 4, CostParams::paper_default());
}

#[test]
fn empty_relation() {
    let parts: Vec<adaptagg::storage::HeapFile> = (0..4)
        .map(|_| adaptagg::storage::HeapFile::with_default_pages())
        .collect();
    check_all(&parts, &default_query(), 4, CostParams::paper_default());
}

#[test]
fn single_tuple_relation() {
    let spec = RelationSpec::uniform(1, 1);
    let parts = generate_partitions(&spec, 4); // 3 nodes get nothing
    check_all(&parts, &default_query(), 4, CostParams::paper_default());
}
