//! Cost-model invariance pins.
//!
//! The wall-clock optimisation work (allocation-free hot path,
//! page-batched operators) treats the cost model as its correctness
//! contract: every `CostEvent` count and virtual-time figure must be
//! bit-identical to the pre-optimisation implementation. The constants
//! below were captured from the unoptimised code (commit 893d349) by
//! the `print_pins` test; they must never move under perf work.
//!
//! What makes these stable by construction:
//! - the component harness feeds the aggregator an explicit row
//!   sequence, so the resident/spilled split is order-controlled;
//! - the cluster figures are 1- and 2-node runs, where message arrival
//!   order is deterministic (each receiver has at most one peer).
//!
//! To recapture after an *intentional* cost-model change (never a perf
//! change):  cargo test --test cost_invariance print_pins -- --ignored --nocapture

use adaptagg_algos::{run_algorithm, AlgorithmKind};
use adaptagg_exec::{Clock, ClusterConfig};
use adaptagg_hashagg::{EmitMode, HashAggregator};
use adaptagg_model::{
    AggFunc, AggQuery, AggSpec, CostEvent, CostParams, CostTracker, CountingTracker, RowKind,
    Value,
};
use adaptagg_workload::{default_query, generate_partitions, RelationSpec};

/// Projected-form query used by the component harness:
/// `SELECT g, SUM(v), COUNT(*) GROUP BY g` over (g, v) rows.
fn harness_query() -> AggQuery {
    AggQuery::new(
        vec![0],
        vec![AggSpec::over(AggFunc::Sum, 1), AggSpec::count_star()],
    )
}

/// Drive a memory-bounded aggregator through raw inserts (with overflow
/// spill — 97 groups against a 32-entry budget), partial merges, and a
/// finalizing drain, recording every cost event into `tracker`. The row
/// sequence is explicit and fixed: nothing about it depends on hash-map
/// iteration order, so its event totals pin the per-tuple charging
/// contract exactly.
fn run_component_harness<T: CostTracker>(tracker: &mut T) {
    let mut agg = HashAggregator::new(harness_query(), 32, 4096, 4);
    for i in 0..500i64 {
        let row = vec![Value::Int((i * 7) % 97), Value::Int(i)];
        agg.push(RowKind::Raw, &row, tracker).unwrap();
    }
    for i in 0..100i64 {
        let row = vec![Value::Int((i * 5) % 61), Value::Int(i), Value::Int(1)];
        agg.push(RowKind::Partial, &row, tracker).unwrap();
    }
    let (rows, stats) = agg.finish(EmitMode::Finalized, tracker).unwrap();
    assert_eq!(rows.len(), 97, "both key sets cover residues of 97 and 61");
    assert!(stats.spilled(), "harness must exercise the overflow path");
}

/// Pinned event totals for the component harness (captured pre-change).
const PIN_COUNTS: &[(CostEvent, u64)] = &[
    (CostEvent::TupleRead, 1378),
    (CostEvent::TupleWrite, 486),
    (CostEvent::TupleHash, 989),
    (CostEvent::TupleAgg, 600),
    (CostEvent::TupleDest, 0),
    (CostEvent::PageReadSeq, 4),
    (CostEvent::PageWriteSeq, 4),
    (CostEvent::PageReadRand, 0),
    (CostEvent::MsgProtocol, 0),
];

/// Pinned virtual time for the component harness under paper-default
/// parameters (f64 bits; captured pre-change).
const PIN_COMPONENT_MS_BITS: u64 = 0x404191eb851eb8ab; // 35.14000000000063 ms

#[test]
fn component_event_counts_are_pinned() {
    let mut counts = CountingTracker::default();
    run_component_harness(&mut counts);
    for &(event, expected) in PIN_COUNTS {
        assert_eq!(
            counts.count(event),
            expected,
            "{event:?} count drifted from the pre-optimisation pin"
        );
    }
}

#[test]
fn component_virtual_time_is_pinned() {
    let mut clock = Clock::new(CostParams::paper_default());
    run_component_harness(&mut clock);
    assert_eq!(
        clock.now_ms().to_bits(),
        PIN_COMPONENT_MS_BITS,
        "virtual time drifted: got {} ms ({:#018x})",
        clock.now_ms(),
        clock.now_ms().to_bits()
    );
}

/// Pinned end-to-end virtual times (f64 bits, captured pre-change) for
/// deterministic cluster shapes. (kind, nodes, tuples, groups,
/// max_hash_entries, elapsed_ms bits.)
const PIN_RUNS: &[(AlgorithmKind, usize, usize, usize, usize, u64)] = &[
    (AlgorithmKind::TwoPhase, 1, 3000, 120, 10_000, 0x40686428f5c2882d), // 195.13 ms
    (AlgorithmKind::Repartitioning, 1, 3000, 120, 10_000, 0x4068be6666665d81), // 197.95 ms
    (AlgorithmKind::AdaptiveTwoPhase, 1, 3000, 120, 10_000, 0x40686428f5c2882d), // 195.13 ms
    (AlgorithmKind::CentralizedTwoPhase, 1, 3000, 120, 10_000, 0x4068633333332c1d), // 195.10 ms
    (AlgorithmKind::SortTwoPhase, 1, 3000, 120, 10_000, 0x4068a75c28f5bb13), // 197.23 ms
    // Overflow engaged: 1500 groups against a 300-entry budget.
    (AlgorithmKind::TwoPhase, 1, 3000, 1500, 300, 0x4079bf9999998e5d), // 411.97 ms
    (AlgorithmKind::Repartitioning, 1, 3000, 1500, 300, 0x407317fffffff8ec), // 305.50 ms
    // Two nodes: arrival order is still deterministic (single peer).
    (AlgorithmKind::TwoPhase, 2, 2000, 50, 10_000, 0x40508dc28f5c288f), // 66.215 ms
    (AlgorithmKind::Repartitioning, 2, 2000, 50, 10_000, 0x405105eb851eb7d2), // 68.0925 ms
    // Two nodes *and* overflow engaged: the spill spool/drain and the
    // cross-node merge both run, covering the columnar spill path.
    (AlgorithmKind::TwoPhase, 2, 3000, 1500, 300, 0x406b3bac08311e03), // 217.86475 ms
];

fn pinned_run_elapsed(
    kind: AlgorithmKind,
    nodes: usize,
    tuples: usize,
    groups: usize,
    max_hash_entries: usize,
    threads: usize,
) -> f64 {
    let spec = RelationSpec::uniform(tuples, groups);
    let parts = generate_partitions(&spec, nodes);
    let params = CostParams {
        max_hash_entries,
        ..CostParams::paper_default()
    };
    let config = ClusterConfig::new(nodes, params).with_threads(threads);
    let out = run_algorithm(kind, &config, &parts, &default_query()).unwrap();
    assert_eq!(out.rows.len(), groups);
    out.elapsed_ms()
}

#[test]
fn cluster_virtual_times_are_pinned() {
    for &(kind, nodes, tuples, groups, m, bits) in PIN_RUNS {
        let elapsed = pinned_run_elapsed(kind, nodes, tuples, groups, m, 1);
        assert_eq!(
            elapsed.to_bits(),
            bits,
            "{kind} n={nodes} |R|={tuples} |G|={groups} M={m}: \
             virtual time drifted to {elapsed} ms ({:#018x})",
            elapsed.to_bits()
        );
    }
}

/// The intra-node morsel engine's contract: the *same* pinned virtual
/// times at every thread count. Parallelism may only move wall-clock;
/// cost charges replay in logical order, and regimes the engine cannot
/// reproduce exactly (spill, floats) abort to the serial path. The
/// spill-regime rows in `PIN_RUNS` exercise precisely that fallback.
#[test]
fn cluster_virtual_times_are_pinned_at_every_thread_count() {
    for threads in [2usize, 4, 8] {
        for &(kind, nodes, tuples, groups, m, bits) in PIN_RUNS {
            let elapsed = pinned_run_elapsed(kind, nodes, tuples, groups, m, threads);
            assert_eq!(
                elapsed.to_bits(),
                bits,
                "{kind} n={nodes} |R|={tuples} |G|={groups} M={m} threads={threads}: \
                 parallel virtual time diverged to {elapsed} ms ({:#018x})",
                elapsed.to_bits()
            );
        }
    }
}

/// Capture tool: prints the pin constants for the current build.
/// Run on a commit whose cost behaviour is the intended contract.
#[test]
#[ignore]
fn print_pins() {
    let mut counts = CountingTracker::default();
    run_component_harness(&mut counts);
    println!("const PIN_COUNTS: &[(CostEvent, u64)] = &[");
    for event in CostEvent::ALL {
        println!("    (CostEvent::{event:?}, {}),", counts.count(event));
    }
    println!("];");

    let mut clock = Clock::new(CostParams::paper_default());
    run_component_harness(&mut clock);
    println!(
        "const PIN_COMPONENT_MS_BITS: u64 = {:#018x}; // {} ms",
        clock.now_ms().to_bits(),
        clock.now_ms()
    );

    println!("const PIN_RUNS: ... = &[");
    for &(kind, nodes, tuples, groups, m, _) in PIN_RUNS {
        let elapsed = pinned_run_elapsed(kind, nodes, tuples, groups, m, 1);
        println!(
            "    (AlgorithmKind::{kind:?}, {nodes}, {tuples}, {groups}, {m}, {:#018x}), // {} ms",
            elapsed.to_bits(),
            elapsed
        );
    }
    println!("];");
}
