//! Fuzz-style robustness suite for the wire codec: whatever bytes
//! arrive — truncated, flipped, oversized, or pure noise — decoding
//! must return a typed [`FrameError`]/[`NetError`], never panic, and
//! never allocate on the say-so of a corrupt length prefix.
//!
//! Deterministic by construction: all mutations are drawn from seeded
//! `SplitMix64` streams, so any failure replays exactly.

use adaptagg::net::{
    frame, Control, DataKind, FrameError, Message, NetError, Payload, SplitMix64, WireFrame,
    MAX_FRAME_BYTES,
};
use adaptagg::storage::Page;
use std::io::Cursor;

fn sample_page(tuples: usize) -> Page {
    let mut p = Page::new(1024);
    for i in 0..tuples {
        assert!(p
            .try_push(&[
                adaptagg::model::Value::Int(i as i64),
                adaptagg::model::Value::Float(i as f64 * 0.5),
            ])
            .unwrap());
    }
    p
}

/// A corpus covering every frame tag, both payload kinds, and every
/// control variant — the codec's full surface.
fn corpus() -> Vec<WireFrame> {
    let msg = |payload| {
        WireFrame::Msg(Message {
            from: 2,
            seq: 99,
            sent_at_ms: 1234.5,
            payload,
        })
    };
    vec![
        WireFrame::Hello { node: 1, nodes: 4 },
        WireFrame::Heartbeat { node: 3 },
        WireFrame::Bye { node: 0 },
        msg(Payload::Data {
            kind: DataKind::Raw,
            page: sample_page(7),
        }),
        msg(Payload::Data {
            kind: DataKind::Partial,
            page: sample_page(0),
        }),
        msg(Payload::Control(Control::EndOfStream)),
        msg(Payload::Control(Control::EndOfPhase { groups_seen: 42 })),
        msg(Payload::Control(Control::SamplingDecision {
            use_repartitioning: true,
            groups_in_sample: 17,
        })),
        msg(Payload::Control(Control::Abort {
            origin: 3,
            reason: "chaos".into(),
        })),
        msg(Payload::Control(Control::Job(vec![1, 2, 3, 4, 5]))),
    ]
}

#[test]
fn every_truncation_of_every_frame_is_a_typed_error() {
    for frame in corpus() {
        let full = frame::encode_frame(&frame);
        // Whole-buffer decode of every strict prefix.
        for cut in 0..full.len() {
            match frame::decode_frame(&full[..cut]) {
                Err(_) => {}
                Ok(decoded) => panic!(
                    "prefix of len {cut}/{} decoded as {decoded:?}",
                    full.len()
                ),
            }
        }
        // Stream decode of every torn write: a clean EOF at a frame
        // boundary is Ok(None); a tear anywhere else is Truncated.
        let mut wire = Vec::new();
        frame::write_frame(&mut wire, &frame).unwrap();
        for cut in 0..wire.len() {
            let mut cursor = Cursor::new(&wire[..cut]);
            match frame::read_frame(&mut cursor) {
                Ok(None) if cut == 0 => {}
                Err(NetError::Frame(FrameError::Truncated)) if cut > 0 => {}
                other => panic!("torn stream at {cut}: {other:?}"),
            }
        }
    }
}

#[test]
fn random_byte_flips_never_panic_and_never_misdecode_silently() {
    let mut rng = SplitMix64::new(0xF1A5_0C0D);
    let mut typed_rejections = 0u32;
    for frame in corpus() {
        let clean = frame::encode_frame(&frame);
        let reference = frame::decode_frame(&clean).unwrap();
        for _ in 0..200 {
            let mut bytes = clean.clone();
            let flips = 1 + (rng.next_u64() as usize % 3);
            for _ in 0..flips {
                let i = rng.next_u64() as usize % bytes.len();
                let bit = 1u8 << (rng.next_u64() % 8);
                bytes[i] ^= bit;
            }
            match frame::decode_frame(&bytes) {
                // A flip may still decode (e.g. it landed in a payload
                // integer) — then it must decode to *something*, not
                // crash. But it must never silently reproduce the
                // original from different bytes.
                Ok(decoded) => {
                    if bytes != clean {
                        assert_ne!(
                            format!("{decoded:?}"),
                            format!("{reference:?}"),
                            "different bytes, identical decode"
                        );
                    }
                }
                Err(_) => typed_rejections += 1,
            }
        }
    }
    assert!(
        typed_rejections > 0,
        "no flip was ever rejected — the validators are dead code"
    );
}

#[test]
fn pure_noise_never_panics() {
    let mut rng = SplitMix64::new(0xBAD_F00D);
    for len in [0usize, 1, 3, 4, 5, 16, 64, 256, 4096] {
        for _ in 0..50 {
            let noise: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = frame::decode_frame(&noise);
            let mut cursor = Cursor::new(noise);
            let _ = frame::read_frame(&mut cursor);
        }
    }
}

#[test]
fn oversized_declarations_fail_before_allocating() {
    // A 4-byte header claiming a huge frame must be rejected from the
    // length prefix alone — the body is never read, let alone
    // allocated. (If this allocated, the test would OOM long before
    // the assertion.)
    for declared in [
        MAX_FRAME_BYTES + 1,
        MAX_FRAME_BYTES * 2,
        u32::MAX / 2,
        u32::MAX,
    ] {
        let mut wire = declared.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 8]); // a lying, tiny body
        let mut cursor = Cursor::new(wire);
        match frame::read_frame(&mut cursor) {
            Err(NetError::Frame(FrameError::Oversized { declared: d, max })) => {
                assert_eq!(d, declared);
                assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => panic!("declared {declared}: {other:?}"),
        }
    }
}

#[test]
fn corrupt_page_capacity_cannot_drive_allocation() {
    // Take a valid data-page frame and rewrite its embedded capacity
    // field to the maximum: decode must fail with a typed error, not
    // allocate a giant page. The capacity field sits at a fixed offset
    // in the encoding; find it by scanning for the known clean value.
    let frame = WireFrame::Msg(Message {
        from: 1,
        seq: 5,
        sent_at_ms: 0.0,
        payload: Payload::Data {
            kind: DataKind::Raw,
            page: sample_page(3),
        },
    });
    let clean = frame::encode_frame(&frame);
    let needle = 1024u32.to_le_bytes();
    let pos = clean
        .windows(4)
        .position(|w| w == needle)
        .expect("capacity field present");
    let mut corrupt = clean.clone();
    corrupt[pos..pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    match frame::decode_frame(&corrupt) {
        Err(FrameError::Corrupt(_)) => {}
        other => panic!("max-capacity page decoded as {other:?}"),
    }
}

#[test]
fn trailing_garbage_after_a_valid_body_is_rejected() {
    for frame in corpus() {
        let mut bytes = frame::encode_frame(&frame);
        bytes.push(0);
        match frame::decode_frame(&bytes) {
            Err(FrameError::Corrupt(_)) => {}
            other => panic!("{frame:?} + garbage: {other:?}"),
        }
    }
}

#[test]
fn valid_frames_roundtrip_through_stream_io() {
    // The positive control for all the negative tests above: the whole
    // corpus, concatenated on one stream, reads back exactly.
    let frames = corpus();
    let mut wire = Vec::new();
    for f in &frames {
        frame::write_frame(&mut wire, f).unwrap();
    }
    let mut cursor = Cursor::new(wire);
    let mut back = Vec::new();
    while let Some(f) = frame::read_frame(&mut cursor).unwrap() {
        back.push(f);
    }
    assert_eq!(
        format!("{back:?}"),
        format!("{frames:?}"),
        "stream roundtrip changed the corpus"
    );
}
