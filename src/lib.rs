//! # adaptagg — Adaptive Parallel Aggregation Algorithms
//!
//! A from-scratch Rust reproduction of Shatdal & Naughton, *"Adaptive
//! Parallel Aggregation Algorithms"*, SIGMOD 1995: six parallel GROUP BY /
//! duplicate-elimination algorithms for shared-nothing parallel database
//! systems, a simulated multi-node execution engine to run them on, the
//! paper's analytical cost model, and the workload generators (including
//! data-skew scenarios) used in its evaluation.
//!
//! This crate is a facade: it re-exports the public API of the workspace
//! crates so applications can depend on `adaptagg` alone.
//!
//! ```
//! use adaptagg::prelude::*;
//!
//! // 1 M-tuple relation with 100 groups, round-robin across 8 nodes.
//! let spec = RelationSpec::uniform(100_000, 100).with_seed(42);
//! let query = AggQuery::new(vec![0], vec![AggSpec::over(AggFunc::Sum, 1)]);
//! let cluster = ClusterConfig::new(8, CostParams::cluster_default());
//! let partitions = generate_partitions(&spec, cluster.nodes);
//!
//! // Run the paper's flagship algorithm: Adaptive Two Phase.
//! let outcome = run_algorithm(AlgorithmKind::AdaptiveTwoPhase, &cluster, &partitions, &query)
//!     .expect("aggregation succeeds");
//! assert_eq!(outcome.rows.len(), 100);
//! println!("virtual time: {:.1} ms", outcome.run.elapsed_ms());
//! ```

pub use adaptagg_algos as algos;
pub use adaptagg_cost as cost;
pub use adaptagg_exec as exec;
pub use adaptagg_hashagg as hashagg;
pub use adaptagg_model as model;
pub use adaptagg_net as net;
pub use adaptagg_obs as obs;
pub use adaptagg_sample as sample;
pub use adaptagg_serve as serve;
pub use adaptagg_sortagg as sortagg;
pub use adaptagg_sql as sql;
pub use adaptagg_storage as storage;
pub use adaptagg_workload as workload;

/// The common imports for applications.
pub mod prelude {
    pub use adaptagg_algos::{
        reference_aggregate, run_algorithm, run_algorithm_with, AdaptEvent, AlgoConfig,
        AlgorithmKind, RunOutcome,
    };
    pub use adaptagg_cost::{
        scaleup_curve, selectivity_sweep, CostAlgorithm, CostBreakdown, ModelConfig,
    };
    pub use adaptagg_exec::{
        ClusterConfig, PhaseKind, RecoveryPolicy, RecoveryStats, RunResult, RunTrace,
        SwitchCause, TraceEvent,
    };
    pub use adaptagg_model::{
        AggFunc, AggQuery, AggSpec, CostParams, GroupKey, NetworkKind, ResultRow, Schema, Tuple,
        Value,
    };
    pub use adaptagg_sample::{AlgorithmChoice, CrossoverRule};
    pub use adaptagg_sql::{compile as compile_sql, BoundQuery};
    pub use adaptagg_workload::{
        default_query, generate_partitions, InputSkewSpec, OutputSkewSpec, RelationSpec,
        TpcdWorkload,
    };
}
