//! Offline stand-in for `rand` 0.8 (see `shims/README.md`): the subset
//! of the API this workspace uses, backed by xoshiro256++ seeded via
//! SplitMix64.
//!
//! Streams differ from upstream `rand`, but every consumer in this
//! workspace treats the generator as an opaque deterministic source — the
//! guarantees that matter (determinism per seed, uniformity, full-range
//! coverage) hold.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of `T` from the "standard" distribution
    /// (uniform `[0,1)` for floats, uniform over all values for ints).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range. Panics if empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types samplable uniformly from a `Range`.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Debiased sample from `[0, span)` via Lemire-style rejection.
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the modulo unbiased.
    let zone = u64::MAX - u64::MAX.wrapping_rem(span);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty : $wide:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                range.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )+};
}

impl_sample_uniform_int!(
    i8: i64, i16: i64, i32: i64, i64: i64, isize: i64,
    u8: u64, u16: u64, u32: u64, u64: u64, usize: u64,
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through SplitMix64 — the same construction
    /// the xoshiro authors recommend. Not the upstream StdRng stream,
    /// but deterministic, fast, and statistically solid.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Slice shuffling and choosing, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0i64..10);
            assert!((0..10).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..100 {
            let v = rng.gen_range(-5i64..-2);
            assert!((-5..-2).contains(&v));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "identity shuffle");
    }

    #[test]
    fn choose_returns_an_element() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [10, 20, 30];
        for _ in 0..10 {
            assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
