//! Offline stand-in for `criterion` (see `shims/README.md`): the API
//! subset this workspace's benches use, backed by a simple median-of-runs
//! wall-clock timer. No statistics engine, no HTML reports — it exists so
//! `cargo bench` produces useful numbers and bench code stays compiling.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration label for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
    sample_count: u32,
}

impl Bencher {
    fn new(sample_count: u32) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Time `f`, keeping its output alive through `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate iterations so one sample takes ≥ ~1 ms.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as u32;
        self.iters_per_sample = per_sample;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut ns: Vec<u128> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() / self.iters_per_sample.max(1) as u128)
            .collect();
        ns.sort_unstable();
        ns[ns.len() / 2]
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let ns = bencher.median_ns();
    let time = if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns > 0 => {
            format!("  {:.1} Melem/s", n as f64 / ns as f64 * 1e3)
        }
        Some(Throughput::Bytes(n)) if ns > 0 => {
            format!("  {:.1} MiB/s", n as f64 / ns as f64 * 1e9 / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("{label:<50} {time:>12}{rate}");
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.sample_count);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.sample_count);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_count: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 15 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        report(&id.to_string(), &b, None);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

/// Collect bench functions under a group name, as upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_a_nonzero_median() {
        let mut b = Bencher::new(5);
        b.iter(|| std::hint::black_box((0..100).sum::<u64>()));
        assert!(b.median_ns() > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10)).sample_size(10);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("in", 3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
