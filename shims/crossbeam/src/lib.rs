//! Offline stand-in for `crossbeam`, exposing only the `channel` subset
//! this workspace uses (see `shims/README.md` for why these exist).
//!
//! Backed by `std::sync::mpsc`, whose unbounded channel has the same
//! semantics for our usage: cloneable senders, a single receiver per
//! node, FIFO per sender, `recv`/`try_recv`/`recv_timeout`.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Cloneable sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_from_dropped_senders_errors() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
