//! Offline stand-in for `parking_lot` (see `shims/README.md`): std locks
//! with parking_lot's guard-returning API. Poisoning is deliberately
//! ignored, matching parking_lot semantics.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A readers-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guard_api() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_guard_api() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
