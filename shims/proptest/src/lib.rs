//! Offline stand-in for `proptest` (see `shims/README.md`): the subset
//! of the API this workspace's property tests use, with deterministic
//! case generation (seeded per test name) instead of entropy + regression
//! files. Shrinking is not implemented — a failing case prints its inputs
//! via the assertion message instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// The RNG handed to strategies while generating a test case.
pub type TestRng = StdRng;

/// Per-test configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic seed for a property, derived from its name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The RNG for a named property — callable from the `proptest!` macro in
/// crates that do not themselves depend on `rand`.
pub fn rng_for(name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for(name))
}

/// A generator of values of `Self::Value`.
///
/// Object-safe core (`generate`) plus sized combinators, so
/// `Box<dyn Strategy<Value = V>>` works for `prop_oneof!`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed strategy (the element type of `prop_oneof!` unions).
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix extremes in: edge cases find bugs that uniform
                // sampling over 2^64 essentially never hits.
                match rng.gen_range(0..8u32) {
                    0 => 0 as $t,
                    1 => <$t>::MIN,
                    2 => <$t>::MAX,
                    3 => rng.gen_range(0..16u64) as $t,
                    _ => rng.gen::<u64>() as $t,
                }
            }
        }
    )+};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    /// Finite, non-NaN floats (as proptest's default f64 strategy),
    /// with zeros and mixed magnitudes represented.
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.gen_range(0..8u32) {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            3 => -1.0,
            _ => {
                let mantissa: f64 = rng.gen::<f64>() * 2.0 - 1.0;
                let exp = rng.gen_range(-60i32..60);
                mantissa * exp as f64 * (2.0f64).powi(exp / 6)
            }
        }
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// `Vec` strategy with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

mod pattern {
    //! A miniature regex-pattern generator covering the patterns used in
    //! this workspace's tests: sequences of `.` / `[class]` / literal
    //! atoms, each with an optional `{n}` or `{n,m}` repetition.

    /// One atom: the characters it may produce, plus its repetition.
    pub(crate) struct Atom {
        pub chars: Vec<char>,
        pub min: usize,
        pub max: usize,
    }
}

impl Strategy for &'static str {
    type Value = String;

    /// Generate a string matching the (tiny regex subset) pattern.
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_class_pattern(self);
        let mut out = String::new();
        for atom in atoms {
            let n = if atom.max > atom.min {
                rng.gen_range(atom.min..atom.max + 1)
            } else {
                atom.min
            };
            for _ in 0..n {
                if !atom.chars.is_empty() {
                    out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
                }
            }
        }
        out
    }
}

/// Parse a pattern of `.`/`[class]`/literal atoms with `{n,m}` repeats.
fn parse_class_pattern(pattern: &str) -> Vec<pattern::Atom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars: Vec<char> = match c {
            '.' => (' '..='~').collect(),
            '[' => {
                let mut class = Vec::new();
                let mut pending: Vec<char> = Vec::new();
                while let Some(&d) = it.peek() {
                    it.next();
                    if d == ']' {
                        break;
                    }
                    if d == '-' && !pending.is_empty() && it.peek().is_some_and(|&e| e != ']') {
                        let start = pending.pop().expect("checked nonempty");
                        let end = it.next().expect("peeked");
                        class.extend(start..=end);
                    } else {
                        if let Some(p) = pending.pop() {
                            class.push(p);
                        }
                        pending.push(d);
                    }
                }
                class.extend(pending);
                class
            }
            lit => vec![lit],
        };
        // Optional {n} / {n,m} repeat suffix.
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let mut spec = String::new();
            for ch in it.by_ref() {
                if ch == '}' {
                    break;
                }
                spec.push(ch);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim().parse().unwrap_or(0),
                ),
                None => {
                    let n = spec.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(pattern::Atom { chars, min, max });
    }
    atoms
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Build a uniform union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fail the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fail the current property case unless the values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fail the current property case if the values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, cfg.cases, msg
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_vec_generate_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        let s = crate::collection::vec((0i64..64, -100i64..100), 0..400);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 400);
            for (a, b) in v {
                assert!((0..64).contains(&a));
                assert!((-100..100).contains(&b));
            }
        }
    }

    #[test]
    fn string_pattern_generates_matching() {
        let mut rng = crate::TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = "[a-z][a-z0-9_]{0,10}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 11, "bad len: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
        for _ in 0..100 {
            let s = ".{0,80}".generate(&mut rng);
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        let mut rng = crate::TestRng::seed_from_u64(3);
        let s = prop_oneof![
            Just(0usize),
            (1usize..3).prop_map(|x| x),
            Just(9usize),
        ];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&0) && seen.contains(&9) && (seen.contains(&1) || seen.contains(&2)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, asserts work, return Ok works.
        #[test]
        fn macro_smoke(x in 0i64..10, v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x >= 0);
            prop_assert_eq!(v.len() < 4, true);
            if x == 3 {
                return Ok(());
            }
            prop_assert_ne!(x, 10);
        }
    }
}
